//! The deterministic micro-operation trace generator.
//!
//! A [`TraceGenerator`] walks a synthetic program whose *static* structure is
//! derived deterministically from the profile: the code footprint is divided
//! into a hot region and a cold remainder; execution proceeds loop by loop
//! (pick a loop start, walk its body for a sampled iteration count, move on).
//! Each static program counter hashes to a fixed macro-instruction template
//! (operation class, branch class, skip distance), so the same PC always
//! carries the same instruction — which is what lets the simulator's branch
//! predictor and instruction cache behave like they do on real code.
//!
//! Machine-dependent CISC cracking is applied at generation time through
//! [`Cracking`]: the same macro-instruction stream expands into more µops on
//! a Netburst-like machine than on a Core-like machine, reproducing the
//! "µop fusion" effect the paper's delta stacks isolate.

use crate::op::{BranchClass, BranchInfo, MicroOp, UopKind};
use crate::profile::{AccessPattern, Cracking, WorkloadProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

/// Base virtual address of the code segment.
const CODE_BASE: u64 = 0x0040_0000;
/// Base virtual address of the first data region; regions are spaced apart.
const DATA_BASE: u64 = 0x1000_0000;
/// Virtual-address spacing between data regions.
const DATA_SPACING: u64 = 0x1000_0000;
/// Bytes per macro-instruction in the synthetic ISA.
const INSTR_BYTES: u64 = 4;

/// The geometric dep-distance sample the per-µop path historically computed:
/// `clamp(ceil(ln(max(m·2⁻⁵³, 1e-12)) / ln_q), 1, 512)` where `m` is the
/// 53-bit uniform mantissa drawn from the RNG. Kept as the oracle that
/// [`geometric_cutoffs`] tabulates (and that tests validate against).
fn geometric_sample(m: u64, ln_q: f64) -> u32 {
    let u = ((m as f64) * (1.0 / (1u64 << 53) as f64)).max(1e-12);
    let d = (u.ln() / ln_q).ceil();
    (d as u32).clamp(1, 512)
}

/// Exact integer cutoffs for the geometric dep-distance sampler.
///
/// `geometric_sample(m, ln_q)` is a monotone non-increasing step function of
/// the integer mantissa `m` (ln is monotone for faithful rounding —
/// `u·|ln u| ≤ 1/e` keeps adjacent mantissa steps strictly larger than the
/// rounding error — and division by the negative constant plus `ceil`
/// preserve monotonicity). So the whole f64 pipeline collapses into a table:
/// `cutoffs[i]` is the smallest `m` whose sample is `i + 1`, found by binary
/// search *using the original formula as the oracle* — the table path is
/// bit-identical to the formula path by construction, with no per-µop `ln`.
///
/// Tables are cached per `ln_q` bit pattern (one per distinct
/// `mean_dep_distance` across all profiles, ever).
fn geometric_cutoffs(ln_q: f64) -> Arc<[u64]> {
    type CutoffCache = Mutex<Vec<(u64, Arc<[u64]>)>>;
    static CACHE: OnceLock<CutoffCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let key = ln_q.to_bits();
    let mut guard = cache.lock().expect("cutoff cache lock");
    if let Some((_, table)) = guard.iter().find(|(k, _)| *k == key) {
        return Arc::clone(table);
    }
    let dmax = geometric_sample(0, ln_q);
    let mut cutoffs = Vec::with_capacity(dmax as usize);
    for d in 1..=dmax {
        // Smallest m with sample(m) <= d; the predicate sample(m) > d is
        // true on a (possibly empty) prefix of m-space.
        let (mut lo, mut hi) = (0u64, 1u64 << 53);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if geometric_sample(mid, ln_q) > d {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        cutoffs.push(lo);
    }
    let table: Arc<[u64]> = cutoffs.into();
    guard.push((key, Arc::clone(&table)));
    table
}

/// Splitmix64: cheap deterministic per-PC hashing.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What a static program counter decodes to.
#[derive(Debug, Clone, Copy)]
struct StaticInstr {
    kind: UopKind,
    /// For branches: predictability class.
    branch_class: BranchClass,
    /// For taken non-loop branches: forward skip in instructions.
    skip: u64,
    /// For memory ops: which data region this PC's accesses touch.
    region: usize,
    /// Patterned branches: repeat period (2..=9).
    period: u32,
    /// Patterned branches: the per-PC hash that picks the sub-style and
    /// toggle slot (cached here so the dynamic path never rehashes).
    pat_h: u64,
}

/// Per-region address-generation state.
///
/// Random and pointer-chase regions access memory in *bursts* with page and
/// line locality: real irregular codes (hash tables, graph nodes, sparse
/// rows) touch several nearby fields per visited object before jumping.
/// Without bursts, every access lands on a fresh page and line, inflating
/// TLB and cache miss rates an order of magnitude beyond real workloads.
#[derive(Debug, Clone)]
struct RegionState {
    base: u64,
    footprint: u64,
    pattern: AccessPattern,
    cursor: u64,
    /// Remaining accesses in the current locality burst.
    burst_left: u32,
    /// Base offset of the current burst's neighbourhood.
    burst_base: u64,
    /// µop index of the most recent load in this region (pointer chasing).
    last_load: Option<u64>,
}

/// Byte span of one locality burst (a few cache lines of one "object").
const BURST_SPAN: u64 = 256;

/// The active loop being walked.
#[derive(Debug, Clone)]
struct LoopState {
    start_pc: u64,
    body_instrs: u64,
    iters_left: u64,
    /// Offset of the next instruction within the body, in instructions.
    offset: u64,
    /// Iteration index (drives patterned branch outcomes).
    iter_index: u64,
}

/// Deterministic µop trace generator for one workload profile on one
/// cracking configuration.
///
/// Implements [`Iterator`] over [`MicroOp`]s; the stream is infinite (SPEC
/// benchmarks run for hundreds of billions of instructions — callers `take`
/// what they need).
///
/// # Examples
///
/// ```
/// use pmu::Suite;
/// use specgen::{Cracking, TraceGenerator, WorkloadProfile};
///
/// let profile = WorkloadProfile::builder("demo", Suite::Cpu2000).build();
/// let mut a = TraceGenerator::new(&profile, Cracking::default(), 7);
/// let mut b = TraceGenerator::new(&profile, Cracking::default(), 7);
/// for _ in 0..100 {
///     assert_eq!(a.next(), b.next()); // bit-for-bit deterministic
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    cracking: f64,
    rng: SmallRng,
    pc_seed: u64,
    regions: Vec<RegionState>,
    current: LoopState,
    queue: VecDeque<MicroOp>,
    uop_index: u64,
    last_fp: Option<u64>,
    code_instrs: u64,
    hot_instrs: u64,
    /// Execution counts per static patterned branch (hash-indexed, aliased):
    /// drives run-length direction toggling.
    pattern_counts: Vec<u32>,
    /// Memoised [`TraceGenerator::decode`] results, indexed by static
    /// instruction slot. The decode of a PC is a pure function of
    /// `pc ^ pc_seed` and the (fixed) profile, so each static instruction
    /// is decoded at most once per run instead of once per dynamic visit.
    decode_cache: Vec<Option<StaticInstr>>,
    /// Tabulated geometric sampler (see [`geometric_cutoffs`]): maps the
    /// RNG's 53-bit mantissa straight to a dep distance, bit-identical to
    /// the historical `ceil(ln(u)/ln(1-p))` computation.
    dep_cutoffs: Arc<[u64]>,
}

impl TraceGenerator {
    /// Creates a generator for `profile` under `cracking`, seeded with
    /// `seed`. The profile's name participates in the stream so two
    /// different benchmarks never share a trace even with equal seeds.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: &WorkloadProfile, cracking: Cracking, seed: u64) -> Self {
        if let Err(e) = profile.validate() {
            panic!("{e}");
        }
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in profile.name.bytes() {
            name_hash ^= b as u64;
            name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mixed = splitmix64(seed ^ name_hash);
        let rng = SmallRng::seed_from_u64(mixed);
        let regions = profile
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| RegionState {
                base: DATA_BASE + i as u64 * DATA_SPACING,
                footprint: r.footprint,
                pattern: r.pattern,
                cursor: 0,
                burst_left: 0,
                burst_base: 0,
                last_load: None,
            })
            .collect();
        let code_instrs = (profile.code_footprint / INSTR_BYTES).max(64);
        let hot_instrs =
            ((code_instrs as f64 * profile.code_hot_size_frac) as u64).clamp(64, code_instrs);
        let mut this = Self {
            profile: profile.clone(),
            cracking: cracking.factor,
            rng,
            pc_seed: splitmix64(mixed ^ 0xDEAD_10CC),
            regions,
            current: LoopState {
                start_pc: CODE_BASE,
                body_instrs: 1,
                iters_left: 0,
                offset: 0,
                iter_index: 0,
            },
            queue: VecDeque::with_capacity(16),
            uop_index: 0,
            last_fp: None,
            code_instrs,
            hot_instrs,
            pattern_counts: vec![0; 2048],
            decode_cache: vec![None; code_instrs as usize],
            dep_cutoffs: {
                let p = 1.0 / profile.mean_dep_distance;
                geometric_cutoffs((1.0f64 - p).ln())
            },
        };
        this.begin_loop();
        this
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Decodes the fixed template at a static PC.
    fn decode(&self, pc: u64) -> StaticInstr {
        let h = splitmix64(pc ^ self.pc_seed);
        let p = &self.profile;
        // Map the low 32 bits to a class by cumulative macro-level fractions.
        let u = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
        let class_weights = [
            (UopKind::Load, p.load_frac),
            (UopKind::Store, p.store_frac),
            (UopKind::Branch, p.branch_frac),
            (UopKind::FpAdd, p.fp_frac * 0.5),
            (UopKind::FpMul, p.fp_frac * 0.4),
            (UopKind::FpDiv, p.fp_frac * 0.1),
            (UopKind::IntMul, p.int_mul_frac),
            (UopKind::IntDiv, p.int_div_frac),
        ];
        let mut acc = 0.0;
        let mut kind = UopKind::IntAlu;
        for (candidate, weight) in class_weights {
            acc += weight;
            if u < acc {
                kind = candidate;
                break;
            }
        }
        // Branch class from the next hash bits.
        let v = ((h >> 32) & 0xFFFF) as f64 / u16::MAX as f64;
        let branch_class = if v < p.br_random_frac {
            BranchClass::DataDependent
        } else if v < p.br_random_frac + p.br_pattern_frac {
            BranchClass::Patterned
        } else {
            BranchClass::Biased
        };
        // Region choice by access fraction, from further hash bits.
        let w = ((h >> 48) & 0x7FFF) as f64 / 0x7FFF as f64;
        let mut racc = 0.0;
        let mut region = self.profile.regions.len() - 1;
        for (i, r) in self.profile.regions.iter().enumerate() {
            racc += r.access_fraction;
            if w <= racc {
                region = i;
                break;
            }
        }
        StaticInstr {
            kind,
            branch_class,
            skip: 1 + (h >> 17) % 6,
            region,
            period: 2 + ((h >> 23) % 8) as u32,
            pat_h: splitmix64(pc ^ self.pc_seed ^ 0xA17),
        }
    }

    /// Memoised [`TraceGenerator::decode`]: every PC the walk can visit lies
    /// in `[CODE_BASE, CODE_BASE + code_instrs × INSTR_BYTES)` (loops are
    /// placed inside the code span and skips clamp to the body), so the
    /// static instruction slot indexes the cache directly. Out-of-range PCs
    /// (none today) fall back to a direct decode.
    fn decode_cached(&mut self, pc: u64) -> StaticInstr {
        let slot = pc.wrapping_sub(CODE_BASE) / INSTR_BYTES;
        match self.decode_cache.get(slot as usize) {
            Some(Some(instr)) => *instr,
            Some(None) => {
                let instr = self.decode(pc);
                self.decode_cache[slot as usize] = Some(instr);
                instr
            }
            None => self.decode(pc),
        }
    }

    /// Starts the next loop: picks a region of code (hot or cold), a body
    /// length and an iteration count.
    fn begin_loop(&mut self) {
        let hot = self.rng.gen_bool(self.profile.code_hot_frac);
        let (lo, span) = if hot {
            (0u64, self.hot_instrs)
        } else {
            let cold = self.code_instrs - self.hot_instrs;
            if cold == 0 {
                (0u64, self.hot_instrs)
            } else {
                (self.hot_instrs, cold)
            }
        };
        // Body length 12..=162 instructions, short-biased.
        let body = 12 + self.rng.gen_range(0..150).min(self.rng.gen_range(0..150));
        let body = (body as u64).min(span.max(12));
        let max_start = span.saturating_sub(body);
        let start = lo
            + if max_start == 0 {
                0
            } else {
                self.rng.gen_range(0..=max_start)
            };
        // Iteration counts. Hot code is loopy: mostly modest trip counts
        // with occasional hot kernels — long enough for the predictor to
        // learn, short enough that code rotates at a realistic rate. Cold
        // code is nearly straight-line (initialisation, rarely-taken call
        // paths): if it looped, it would be hot — this is what gives
        // big-code workloads their real I-cache miss rates.
        let iters = if hot {
            match self.rng.gen_range(0..10u32) {
                0..=5 => self.rng.gen_range(4..24u64),
                6..=8 => self.rng.gen_range(24..96u64),
                _ => self.rng.gen_range(96..512u64),
            }
        } else {
            self.rng.gen_range(1..6u64)
        };
        self.current = LoopState {
            start_pc: CODE_BASE + start * INSTR_BYTES,
            body_instrs: body,
            iters_left: iters,
            offset: 0,
            iter_index: 0,
        };
    }

    /// Generates an effective address for a memory µop in `region`.
    fn gen_addr(&mut self, region: usize) -> u64 {
        let r = &mut self.regions[region];
        let offset = match r.pattern {
            AccessPattern::Sequential { stride } => {
                let o = r.cursor;
                r.cursor = (r.cursor + stride as u64) % r.footprint;
                o
            }
            AccessPattern::Random | AccessPattern::PointerChase => {
                // Bursty locality: pick a fresh object occasionally, then
                // touch a few fields within its neighbourhood.
                if r.burst_left == 0 {
                    r.burst_left = self.rng.gen_range(3..12);
                    let span = r.footprint.saturating_sub(BURST_SPAN).max(8);
                    r.burst_base = self.rng.gen_range(0..span);
                }
                r.burst_left -= 1;
                r.burst_base + self.rng.gen_range(0..BURST_SPAN.min(r.footprint))
            }
        };
        r.base + (offset & !7)
    }

    /// Samples a register dependence distance (geometric, mean
    /// `mean_dep_distance`, at least 1).
    fn dep_distance(&mut self) -> u32 {
        // Inverse-CDF geometric sampling via the precomputed cutoff table:
        // one RNG draw (the same draw the f64 path consumed) and a short
        // binary search, no per-µop `ln`.
        let m = self.rng.next_u64() >> 11;
        self.dep_cutoffs.partition_point(|&c| c > m) as u32 + 1
    }

    /// Cracks one macro-instruction into µops and pushes them on the queue.
    fn emit_macro(&mut self, pc: u64, instr: StaticInstr, branch: Option<BranchInfo>) {
        // Expansion: baseline × machine factor, stochastically rounded.
        let target = self.profile.uop_expansion * self.cracking;
        let whole = target.floor() as u64;
        let extra = if self.rng.gen_bool((target - whole as f64).clamp(0.0, 1.0)) {
            1
        } else {
            0
        };
        let n = (whole + extra).max(1);

        for slot in 0..n {
            let first = slot == 0;
            let kind = if first { instr.kind } else { UopKind::IntAlu };
            let mut op = MicroOp::new(kind, pc).with_macro_first(first);

            // Dependences.
            let d1 = if kind.is_fp() && self.rng.gen_bool(self.profile.fp_chain) {
                // Extend the running FP chain when there is one.
                self.last_fp
                    .map(|idx| (self.uop_index - idx) as u32)
                    .filter(|&d| (1..=512).contains(&d))
                    .unwrap_or(0)
            } else {
                0
            };
            let d1 = if d1 == 0 { self.dep_distance() } else { d1 };
            op = op.with_dep1(d1.min(self.uop_index.min(u32::MAX as u64) as u32));
            if self.rng.gen_bool(0.45) {
                let d2 = self.dep_distance();
                op = op.with_dep2(d2.min(self.uop_index.min(u32::MAX as u64) as u32));
            }

            if kind.is_mem() && first {
                let addr = self.gen_addr(instr.region);
                op = op.with_addr(addr);
                if kind == UopKind::Load {
                    // Pointer chasing: this load depends on the previous load
                    // in the same region, serialising the miss stream.
                    let r = &mut self.regions[instr.region];
                    if matches!(r.pattern, AccessPattern::PointerChase) {
                        if let Some(last) = r.last_load {
                            let d = (self.uop_index - last).min(512) as u32;
                            if d >= 1 {
                                op = op.with_dep1(d);
                            }
                        }
                        r.last_load = Some(self.uop_index);
                    }
                }
            }
            if kind == UopKind::Branch && first {
                op.branch = branch;
            }
            if kind.is_fp() {
                self.last_fp = Some(self.uop_index);
            }
            self.queue.push_back(op);
            self.uop_index += 1;
        }
    }

    /// Advances the program walk by one macro-instruction.
    fn step(&mut self) {
        let pc = self.current.start_pc + self.current.offset * INSTR_BYTES;
        let at_body_end = self.current.offset + 1 >= self.current.body_instrs;

        if at_body_end {
            // Loop back-edge (always a branch, whatever the hash says).
            let last_iter = self.current.iters_left <= 1;
            let info = BranchInfo {
                taken: !last_iter,
                target: self.current.start_pc,
                class: BranchClass::Loop,
            };
            let mut instr = self.decode_cached(pc);
            instr.kind = UopKind::Branch;
            self.emit_macro(pc, instr, Some(info));
            if last_iter {
                self.begin_loop();
            } else {
                self.current.iters_left -= 1;
                self.current.iter_index += 1;
                self.current.offset = 0;
            }
            return;
        }

        let instr = self.decode_cached(pc);
        if instr.kind == UopKind::Branch {
            let (taken, class) = match instr.branch_class {
                BranchClass::Biased => (self.rng.gen_bool(0.015), BranchClass::Biased),
                BranchClass::Patterned => {
                    // Two learnable sub-styles, split per static branch:
                    //
                    // * iteration-parity alternation — predictable only when
                    //   the predictor's global history reaches back to the
                    //   previous loop iteration (rewards long histories and
                    //   big tables, penalising the small-predictor machine),
                    // * slow run-length toggling — the branch holds one
                    //   direction for a stretch, then flips; 2-bit counters
                    //   mispredict only at the flips.
                    let h = instr.pat_h;
                    let taken = if h & 1 == 0 {
                        self.current.iter_index.is_multiple_of(2)
                    } else {
                        let slot = (h % 2048) as usize;
                        let count = self.pattern_counts[slot];
                        self.pattern_counts[slot] = count.wrapping_add(1);
                        let run = 8 + (instr.period * 6);
                        (count / run).is_multiple_of(2)
                    };
                    (taken, BranchClass::Patterned)
                }
                BranchClass::DataDependent => (
                    self.rng.gen_bool(self.profile.br_bias),
                    BranchClass::DataDependent,
                ),
                BranchClass::Loop => (true, BranchClass::Loop),
            };
            let skip = if taken { instr.skip } else { 0 };
            let target = pc + INSTR_BYTES * (1 + skip);
            self.emit_macro(
                pc,
                instr,
                Some(BranchInfo {
                    taken,
                    target,
                    class,
                }),
            );
            // Taken forward branches skip ahead within the body.
            self.current.offset =
                (self.current.offset + 1 + skip).min(self.current.body_instrs - 1);
        } else {
            self.emit_macro(pc, instr, None);
            self.current.offset += 1;
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        while self.queue.is_empty() {
            self.step();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MemRegion;
    use pmu::Suite;

    fn demo_profile() -> WorkloadProfile {
        WorkloadProfile::builder("gen-test", Suite::Cpu2000)
            .fp(0.10)
            .build()
    }

    #[test]
    fn deterministic_across_instances() {
        let p = demo_profile();
        let a: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 9)
            .take(5_000)
            .collect();
        let b: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 9)
            .take(5_000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = demo_profile();
        let a: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 1)
            .take(1_000)
            .collect();
        let b: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 2)
            .take(1_000)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_names_differ_with_same_seed() {
        let p1 = demo_profile();
        let mut p2 = demo_profile();
        p2.name = "other".into();
        let a: Vec<_> = TraceGenerator::new(&p1, Cracking::default(), 1)
            .take(1_000)
            .collect();
        let b: Vec<_> = TraceGenerator::new(&p2, Cracking::default(), 1)
            .take(1_000)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn cracking_scales_uop_count() {
        let p = demo_profile();
        let n_macros = |factor: f64| {
            TraceGenerator::new(&p, Cracking::new(factor), 3)
                .take(50_000)
                .filter(|op| op.macro_first)
                .count()
        };
        // More cracking → fewer macro instructions in the same µop budget.
        let lean = n_macros(1.0);
        let fat = n_macros(1.6);
        assert!(
            (fat as f64) < lean as f64 * 0.75,
            "cracked: {fat}, fused: {lean}"
        );
    }

    #[test]
    fn branch_pcs_repeat_for_predictor_learning() {
        let p = demo_profile();
        let ops: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 5)
            .take(50_000)
            .collect();
        let mut branch_pcs: Vec<u64> = ops
            .iter()
            .filter(|o| o.branch.is_some())
            .map(|o| o.pc)
            .collect();
        let dynamic = branch_pcs.len();
        branch_pcs.sort_unstable();
        branch_pcs.dedup();
        let statics = branch_pcs.len();
        assert!(
            dynamic > statics * 5,
            "{dynamic} dynamic / {statics} static"
        );
    }

    #[test]
    fn pointer_chase_loads_depend_on_previous_load() {
        let p = WorkloadProfile::builder("chase", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(1024, 1.0, AccessPattern::PointerChase)])
            .build();
        let ops: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 1)
            .take(20_000)
            .collect();
        // Find consecutive loads; the later must name the earlier as dep1.
        let load_indices: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.kind == UopKind::Load)
            .map(|(i, _)| i)
            .collect();
        assert!(load_indices.len() > 100);
        let mut chained = 0;
        for pair in load_indices.windows(2) {
            let (prev, cur) = (pair[0], pair[1]);
            let d = (cur - prev) as u32;
            if d <= 512 && ops[cur].dep1.map(|x| x.get()) == Some(d) {
                chained += 1;
            }
        }
        assert!(
            chained * 10 >= load_indices.len() * 8,
            "only {chained} of {} loads chained",
            load_indices.len()
        );
    }

    #[test]
    fn sequential_region_addresses_stride_and_wrap() {
        let p = WorkloadProfile::builder("seq", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(
                4,
                1.0,
                AccessPattern::Sequential { stride: 64 },
            )])
            .build();
        let addrs: Vec<u64> = TraceGenerator::new(&p, Cracking::default(), 1)
            .take(30_000)
            .filter_map(|o| o.addr)
            .collect();
        assert!(addrs.len() > 1000);
        let lo = *addrs.iter().min().unwrap();
        let hi = *addrs.iter().max().unwrap();
        assert!(hi - lo < 4096, "addresses stay within the 4 KiB footprint");
    }

    #[test]
    fn dep_distances_are_bounded_by_position() {
        let p = demo_profile();
        for (i, op) in TraceGenerator::new(&p, Cracking::default(), 11)
            .take(2_000)
            .enumerate()
        {
            if let Some(d) = op.dep1 {
                assert!(
                    (d.get() as usize) <= i.max(1),
                    "µop {i} depends {d} back, before the trace start"
                );
            }
        }
    }

    #[test]
    fn mix_tracks_profile_fractions() {
        let p = WorkloadProfile::builder("mix", Suite::Cpu2006)
            .mem_mix(0.30, 0.12)
            .branches(0.10)
            .fp(0.20)
            .build();
        let ops: Vec<_> = TraceGenerator::new(&p, Cracking::default(), 2)
            .take(200_000)
            .collect();
        let macros = ops.iter().filter(|o| o.macro_first).count() as f64;
        let loads = ops.iter().filter(|o| o.kind == UopKind::Load).count() as f64;
        let fps = ops.iter().filter(|o| o.kind.is_fp()).count() as f64;
        // Primary-op fractions are per macro-instruction.
        assert!(
            (loads / macros - 0.30).abs() < 0.05,
            "load frac {}",
            loads / macros
        );
        assert!(
            (fps / macros - 0.20).abs() < 0.05,
            "fp frac {}",
            fps / macros
        );
    }

    #[test]
    fn pcs_stay_inside_code_footprint() {
        let p = WorkloadProfile::builder("code", Suite::Cpu2000)
            .code(32, 0.9, 0.25)
            .build();
        for op in TraceGenerator::new(&p, Cracking::default(), 4).take(20_000) {
            assert!(op.pc >= CODE_BASE);
            assert!(op.pc < CODE_BASE + 32 * 1024);
        }
    }

    #[test]
    fn cutoff_table_matches_formula_oracle() {
        // The tabulated sampler must agree with the historical f64 formula
        // for every 53-bit mantissa. Exhaustive sweep is 2^53, so probe
        // where disagreement could hide: every table boundary ±1 (where the
        // binary search and the ceil/ln rounding must flip in lockstep),
        // the mantissa extremes, and a deterministic stride across the rest.
        for mean in [1.5f64, 3.0, 7.0, 15.0, 40.0, 120.0] {
            let ln_q = (1.0f64 - 1.0 / mean).ln();
            let table = geometric_cutoffs(ln_q);
            let lookup = |m: u64| table.partition_point(|&c| c > m) as u32 + 1;
            let mut probes: Vec<u64> = vec![0, 1, (1u64 << 53) - 1];
            for &c in table.iter() {
                probes.extend([c.saturating_sub(1), c, c + 1]);
            }
            probes.extend((0..4096u64).map(|i| i * ((1u64 << 53) / 4096) + 17));
            for m in probes {
                let m = m.min((1u64 << 53) - 1);
                assert_eq!(
                    lookup(m),
                    geometric_sample(m, ln_q),
                    "table and formula disagree at mean {mean}, mantissa {m}"
                );
            }
        }
    }
}
