//! Deterministic synthetic SPEC-like workloads.
//!
//! The paper's measurements come from running all of SPEC CPU2000 (48
//! benchmark–input pairs) and CPU2006 (55 pairs) to completion on three Intel
//! machines. We do not have the proprietary SPEC binaries, reference inputs,
//! or months of machine time — so this crate builds the closest synthetic
//! equivalent: a *statistical workload generator* that, for each
//! benchmark–input pair, produces a deterministic micro-operation trace whose
//! aggregate behaviour (instruction mix, branch predictability, code/data
//! footprints and access patterns, instruction-level parallelism,
//! pointer-chasing vs. streaming memory behaviour) is calibrated to that
//! benchmark's published characterisation.
//!
//! What matters for the reproduction is not instruction-level fidelity — the
//! model under study only ever sees performance-counter aggregates — but that
//! the benchmark *population* spans a realistic, diverse space: memory-bound
//! streamers with high memory-level parallelism (`libquantum`, `lbm`-like),
//! pointer chasers with none (`mcf`-like), branchy integer codes (`gobmk`,
//! `crafty`-like), big-code front-end-bound workloads (`gcc`-like), and
//! compute-bound floating-point kernels with long dependence chains
//! (`calculix`, `gromacs`-like outliers, which the paper singles out).
//!
//! Everything is deterministic: a profile plus a cracking configuration plus
//! a seed defines the trace bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use specgen::{suites, Cracking, TraceGenerator};
//!
//! let profiles = suites::cpu2000();
//! assert_eq!(profiles.len(), 48);
//! let gen = TraceGenerator::new(&profiles[0], Cracking::default(), 42);
//! let ops: Vec<_> = gen.take(1000).collect();
//! assert_eq!(ops.len(), 1000);
//! ```

pub mod gen;
pub mod op;
pub mod profile;
pub mod stats;
pub mod suites;

pub use gen::TraceGenerator;
pub use op::{BranchClass, BranchInfo, MicroOp, UopKind};
pub use profile::{AccessPattern, Cracking, MemRegion, WorkloadProfile};
pub use stats::TraceStats;
