//! Aggregate statistics over a µop stream — used by tests and examples to
//! check that generated traces actually carry the statistical properties
//! their profiles promise.

use crate::op::{MicroOp, UopKind};
use std::collections::BTreeSet;
use std::fmt;

/// Aggregate statistics of a finite µop stream.
///
/// # Examples
///
/// ```
/// use pmu::Suite;
/// use specgen::{Cracking, TraceGenerator, TraceStats, WorkloadProfile};
///
/// let p = WorkloadProfile::builder("stat-demo", Suite::Cpu2000).build();
/// let gen = TraceGenerator::new(&p, Cracking::default(), 1);
/// let stats = TraceStats::collect(gen.take(10_000));
/// assert_eq!(stats.uops, 10_000);
/// assert!(stats.load_frac() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total µops seen.
    pub uops: u64,
    /// Macro-instructions (µops with `macro_first`).
    pub macros: u64,
    /// Count per [`UopKind`], indexed by position in [`UopKind::ALL`].
    pub kind_counts: [u64; 9],
    /// Dynamic branches.
    pub branches: u64,
    /// Dynamic taken branches.
    pub taken_branches: u64,
    /// Distinct 4 KiB data pages touched.
    pub data_pages: u64,
    /// Distinct 64-byte code lines touched.
    pub code_lines: u64,
    /// Sum of first dependence distances (for the mean).
    pub dep1_sum: u64,
    /// Number of µops with a first dependence.
    pub dep1_count: u64,
}

impl TraceStats {
    /// Consumes a stream and accumulates statistics.
    pub fn collect<I: IntoIterator<Item = MicroOp>>(ops: I) -> Self {
        let mut stats = TraceStats::default();
        let mut pages = BTreeSet::new();
        let mut lines = BTreeSet::new();
        for op in ops {
            stats.uops += 1;
            if op.macro_first {
                stats.macros += 1;
            }
            let kind_idx = UopKind::ALL
                .iter()
                .position(|&k| k == op.kind)
                .expect("kind in ALL");
            stats.kind_counts[kind_idx] += 1;
            if let Some(b) = op.branch {
                stats.branches += 1;
                if b.taken {
                    stats.taken_branches += 1;
                }
            }
            if let Some(a) = op.addr {
                pages.insert(a >> 12);
            }
            lines.insert(op.pc >> 6);
            if let Some(d) = op.dep1 {
                stats.dep1_sum += d.get() as u64;
                stats.dep1_count += 1;
            }
        }
        stats.data_pages = pages.len() as u64;
        stats.code_lines = lines.len() as u64;
        stats
    }

    fn count(&self, kind: UopKind) -> u64 {
        let idx = UopKind::ALL.iter().position(|&k| k == kind).expect("kind");
        self.kind_counts[idx]
    }

    /// Fraction of µops that are loads.
    pub fn load_frac(&self) -> f64 {
        self.count(UopKind::Load) as f64 / self.uops.max(1) as f64
    }

    /// Fraction of µops that are stores.
    pub fn store_frac(&self) -> f64 {
        self.count(UopKind::Store) as f64 / self.uops.max(1) as f64
    }

    /// Fraction of µops that are floating-point.
    pub fn fp_frac(&self) -> f64 {
        (self.count(UopKind::FpAdd) + self.count(UopKind::FpMul) + self.count(UopKind::FpDiv))
            as f64
            / self.uops.max(1) as f64
    }

    /// Fraction of µops that are branches.
    pub fn branch_frac(&self) -> f64 {
        self.count(UopKind::Branch) as f64 / self.uops.max(1) as f64
    }

    /// Observed µops per macro-instruction.
    pub fn uops_per_macro(&self) -> f64 {
        self.uops as f64 / self.macros.max(1) as f64
    }

    /// Mean first-dependence distance.
    pub fn mean_dep1(&self) -> f64 {
        self.dep1_sum as f64 / self.dep1_count.max(1) as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} µops / {} macros (exp {:.2}); load {:.1}%, store {:.1}%, \
             branch {:.1}%, fp {:.1}%; {} data pages, {} code lines",
            self.uops,
            self.macros,
            self.uops_per_macro(),
            self.load_frac() * 100.0,
            self.store_frac() * 100.0,
            self.branch_frac() * 100.0,
            self.fp_frac() * 100.0,
            self.data_pages,
            self.code_lines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::profile::{Cracking, WorkloadProfile};
    use pmu::Suite;

    #[test]
    fn empty_stream_is_all_zero() {
        let stats = TraceStats::collect(std::iter::empty());
        assert_eq!(stats.uops, 0);
        assert_eq!(stats.load_frac(), 0.0);
        assert_eq!(stats.uops_per_macro(), 0.0);
    }

    #[test]
    fn counts_sum_to_total() {
        let p = WorkloadProfile::builder("sum", Suite::Cpu2000)
            .fp(0.1)
            .build();
        let stats =
            TraceStats::collect(TraceGenerator::new(&p, Cracking::default(), 1).take(5_000));
        assert_eq!(stats.kind_counts.iter().sum::<u64>(), stats.uops);
        assert_eq!(stats.uops, 5_000);
        assert!(stats.macros > 0 && stats.macros <= stats.uops);
    }

    #[test]
    fn footprint_counts_reflect_region_size() {
        use crate::profile::{AccessPattern, MemRegion};
        let small = WorkloadProfile::builder("small", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(8, 1.0, AccessPattern::Random)])
            .build();
        let large = WorkloadProfile::builder("large", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(8192, 1.0, AccessPattern::Random)])
            .build();
        let s =
            TraceStats::collect(TraceGenerator::new(&small, Cracking::default(), 1).take(50_000));
        let l =
            TraceStats::collect(TraceGenerator::new(&large, Cracking::default(), 1).take(50_000));
        assert!(
            s.data_pages <= 2,
            "8 KiB is at most 2 pages, saw {}",
            s.data_pages
        );
        assert!(l.data_pages > 100, "8 MiB random should touch many pages");
    }

    #[test]
    fn display_mentions_uops() {
        let p = WorkloadProfile::builder("disp", Suite::Cpu2006).build();
        let stats =
            TraceStats::collect(TraceGenerator::new(&p, Cracking::default(), 1).take(1_000));
        assert!(stats.to_string().contains("1000 µops"));
    }
}
