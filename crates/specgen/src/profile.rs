//! Workload profiles: the statistical description of one benchmark–input
//! pair, from which the generator synthesises a trace.

use pmu::Suite;
use std::fmt;
use std::sync::Arc;

/// Memory access pattern of one data region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Streaming access with a fixed byte stride. Successive misses are
    /// independent → high memory-level parallelism (the `libquantum`/`lbm`
    /// style the paper's MLP discussion needs).
    Sequential {
        /// Byte distance between successive accesses.
        stride: u32,
    },
    /// Uniformly random accesses within the footprint; independent misses,
    /// moderate MLP, heavy TLB pressure for large footprints.
    Random,
    /// Pointer chasing: each load's address depends on the previous load in
    /// the region, serialising misses → MLP ≈ 1 (the `mcf` style).
    PointerChase,
}

/// One region of a workload's data working set.
///
/// Regions are the knob that makes a profile's cache behaviour *emergent*:
/// the same region set produces different miss counts on a 16 KiB L1 /
/// 1 MiB L2 (Pentium 4) than on a 32 KiB L1 / 4 MiB L2 (Core 2) than with
/// an 8 MiB L3 behind a 256 KiB L2 (Core i7) — which is exactly the effect
/// the CPI-delta stacks of Fig. 6 decompose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRegion {
    /// Footprint in bytes.
    pub footprint: u64,
    /// Fraction of all memory accesses that touch this region.
    pub access_fraction: f64,
    /// Access pattern within the region.
    pub pattern: AccessPattern,
}

impl MemRegion {
    /// Convenience constructor with the footprint given in KiB.
    pub fn kib(kib: u64, access_fraction: f64, pattern: AccessPattern) -> Self {
        Self {
            footprint: kib * 1024,
            access_fraction,
            pattern,
        }
    }
}

/// Machine-dependent CISC cracking/fusion configuration.
///
/// The same x86 instruction stream cracks into different µop counts on
/// different machines: Netburst (Pentium 4) cracks aggressively, while the
/// Core microarchitectures fuse µops (macro-fusion, micro-fusion). The
/// paper's delta stacks carry an explicit "µop fusion" component for this.
/// `factor` scales each profile's baseline µops-per-instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cracking {
    /// Multiplier on the profile's baseline µop expansion (1.0 = neutral).
    pub factor: f64,
}

impl Cracking {
    /// Creates a cracking configuration with the given expansion factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 <= factor <= 3.0` (outside this the synthetic
    /// cracking model is meaningless).
    pub fn new(factor: f64) -> Self {
        assert!(
            (0.5..=3.0).contains(&factor),
            "cracking factor {factor} outside sane range"
        );
        Self { factor }
    }
}

impl Default for Cracking {
    /// Neutral cracking (factor 1.0).
    fn default() -> Self {
        Self { factor: 1.0 }
    }
}

/// Statistical description of one benchmark–input pair.
///
/// Build profiles with [`WorkloadProfile::builder`]; the 103 SPEC-like
/// profiles live in [`crate::suites`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark–input name, e.g. `"gcc.200"`. Interned (`Arc<str>`): the
    /// simulator stamps this name into every `RunRecord` it produces, so a
    /// campaign shares one allocation per benchmark instead of copying the
    /// bytes per run.
    pub name: Arc<str>,
    /// Suite membership.
    pub suite: Suite,
    /// Fraction of µops that are loads.
    pub load_frac: f64,
    /// Fraction of µops that are stores.
    pub store_frac: f64,
    /// Fraction of µops that are branches.
    pub branch_frac: f64,
    /// Fraction of µops that are floating-point (split across add/mul/div).
    pub fp_frac: f64,
    /// Fraction of µops that are integer multiplies.
    pub int_mul_frac: f64,
    /// Fraction of µops that are integer divides.
    pub int_div_frac: f64,
    /// Baseline µops per macro-instruction (before machine cracking).
    pub uop_expansion: f64,
    /// Mean register dependence distance in µops (larger → more ILP).
    pub mean_dep_distance: f64,
    /// Probability that an FP µop extends the previous FP µop's chain
    /// (long chains → resource stalls and long branch resolution).
    pub fp_chain: f64,
    /// Static code footprint in bytes.
    pub code_footprint: u64,
    /// Fraction of dynamic instructions from the hot portion of the code.
    pub code_hot_frac: f64,
    /// Fraction of the code footprint considered hot.
    pub code_hot_size_frac: f64,
    /// Data regions; access fractions must sum to 1.
    pub regions: Vec<MemRegion>,
    /// Fraction of dynamic branches that are data-dependent (hard).
    pub br_random_frac: f64,
    /// Taken-probability of data-dependent branches (0.5 = hardest).
    pub br_bias: f64,
    /// Fraction of dynamic branches that follow short repeating patterns.
    pub br_pattern_frac: f64,
}

impl WorkloadProfile {
    /// Starts building a profile with workload-neutral defaults.
    pub fn builder(name: impl Into<Arc<str>>, suite: Suite) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder::new(name, suite)
    }

    /// Fraction of µops that are plain integer ALU operations (the
    /// remainder after all the explicit classes).
    pub fn int_alu_frac(&self) -> f64 {
        1.0 - self.load_frac
            - self.store_frac
            - self.branch_frac
            - self.fp_frac
            - self.int_mul_frac
            - self.int_div_frac
    }

    /// Validates the profile's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: fractions out
    /// of `[0, 1]` or summing past 1, region fractions not summing to 1,
    /// zero footprints, or an empty region list.
    pub fn validate(&self) -> Result<(), InvalidProfileError> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("fp_frac", self.fp_frac),
            ("int_mul_frac", self.int_mul_frac),
            ("int_div_frac", self.int_div_frac),
            ("fp_chain", self.fp_chain),
            ("code_hot_frac", self.code_hot_frac),
            ("code_hot_size_frac", self.code_hot_size_frac),
            ("br_random_frac", self.br_random_frac),
            ("br_bias", self.br_bias),
            ("br_pattern_frac", self.br_pattern_frac),
        ];
        for (field, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(InvalidProfileError {
                    profile: self.name.clone(),
                    reason: format!("{field} = {v} outside [0, 1]"),
                });
            }
        }
        if self.int_alu_frac() < 0.0 {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: format!(
                    "µop class fractions sum to {:.3} > 1",
                    1.0 - self.int_alu_frac()
                ),
            });
        }
        if self.br_random_frac + self.br_pattern_frac > 1.0 {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: "branch class fractions sum past 1".into(),
            });
        }
        if !(1.0..=8.0).contains(&self.uop_expansion) {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: format!("uop_expansion = {} outside [1, 8]", self.uop_expansion),
            });
        }
        if self.mean_dep_distance < 1.0 {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: "mean_dep_distance below 1".into(),
            });
        }
        if self.code_footprint == 0 {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: "code footprint is zero".into(),
            });
        }
        if self.regions.is_empty() {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: "no data regions".into(),
            });
        }
        let total: f64 = self.regions.iter().map(|r| r.access_fraction).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: format!("region access fractions sum to {total:.4}, expected 1"),
            });
        }
        if self.regions.iter().any(|r| r.footprint == 0) {
            return Err(InvalidProfileError {
                profile: self.name.clone(),
                reason: "region with zero footprint".into(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.suite)
    }
}

/// Error describing why a [`WorkloadProfile`] is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidProfileError {
    profile: Arc<str>,
    reason: String,
}

impl fmt::Display for InvalidProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid profile `{}`: {}", self.profile, self.reason)
    }
}

impl std::error::Error for InvalidProfileError {}

/// Builder for [`WorkloadProfile`] (see `C-BUILDER`): profiles have a dozen
/// knobs, most of which want per-benchmark defaults.
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    fn new(name: impl Into<Arc<str>>, suite: Suite) -> Self {
        Self {
            profile: WorkloadProfile {
                name: name.into(),
                suite,
                load_frac: 0.24,
                store_frac: 0.10,
                branch_frac: 0.12,
                fp_frac: 0.0,
                int_mul_frac: 0.01,
                int_div_frac: 0.001,
                uop_expansion: 1.35,
                mean_dep_distance: 6.0,
                fp_chain: 0.3,
                code_footprint: 64 * 1024,
                code_hot_frac: 0.92,
                code_hot_size_frac: 0.12,
                regions: vec![MemRegion::kib(
                    64,
                    1.0,
                    AccessPattern::Sequential { stride: 16 },
                )],
                br_random_frac: 0.08,
                br_bias: 0.65,
                br_pattern_frac: 0.25,
            },
        }
    }

    /// Sets the load/store µop fractions.
    pub fn mem_mix(mut self, load: f64, store: f64) -> Self {
        self.profile.load_frac = load;
        self.profile.store_frac = store;
        self
    }

    /// Sets the branch µop fraction.
    pub fn branches(mut self, frac: f64) -> Self {
        self.profile.branch_frac = frac;
        self
    }

    /// Sets the floating-point µop fraction.
    pub fn fp(mut self, frac: f64) -> Self {
        self.profile.fp_frac = frac;
        self
    }

    /// Sets integer multiply/divide fractions.
    pub fn int_muldiv(mut self, mul: f64, div: f64) -> Self {
        self.profile.int_mul_frac = mul;
        self.profile.int_div_frac = div;
        self
    }

    /// Sets the baseline µop expansion (µops per macro-instruction).
    pub fn expansion(mut self, uops_per_instr: f64) -> Self {
        self.profile.uop_expansion = uops_per_instr;
        self
    }

    /// Sets the mean dependence distance (ILP knob) and FP chain probability.
    pub fn ilp(mut self, mean_dep_distance: f64, fp_chain: f64) -> Self {
        self.profile.mean_dep_distance = mean_dep_distance;
        self.profile.fp_chain = fp_chain;
        self
    }

    /// Sets the code footprint (KiB) and hotness structure.
    pub fn code(mut self, footprint_kib: u64, hot_frac: f64, hot_size_frac: f64) -> Self {
        self.profile.code_footprint = footprint_kib * 1024;
        self.profile.code_hot_frac = hot_frac;
        self.profile.code_hot_size_frac = hot_size_frac;
        self
    }

    /// Replaces the data region set.
    pub fn regions(mut self, regions: Vec<MemRegion>) -> Self {
        self.profile.regions = regions;
        self
    }

    /// Sets branch predictability: fraction of data-dependent branches,
    /// their taken-bias, and the fraction of patterned branches.
    pub fn branch_behaviour(mut self, random_frac: f64, bias: f64, pattern_frac: f64) -> Self {
        self.profile.br_random_frac = random_frac;
        self.profile.br_bias = bias;
        self.profile.br_pattern_frac = pattern_frac;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the assembled profile fails [`WorkloadProfile::validate`] —
    /// profiles are static data authored in this crate, so an invalid one is
    /// a programming error, not a runtime condition.
    pub fn build(self) -> WorkloadProfile {
        if let Err(e) = self.profile.validate() {
            panic!("{e}");
        }
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let p = WorkloadProfile::builder("test", Suite::Cpu2000).build();
        assert!(p.validate().is_ok());
        assert!(p.int_alu_frac() > 0.0);
    }

    #[test]
    fn int_alu_frac_is_remainder() {
        let p = WorkloadProfile::builder("t", Suite::Cpu2006)
            .mem_mix(0.3, 0.1)
            .branches(0.1)
            .fp(0.2)
            .int_muldiv(0.05, 0.01)
            .build();
        assert!((p.int_alu_frac() - 0.24).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_mix_panics_on_build() {
        let _ = WorkloadProfile::builder("t", Suite::Cpu2000)
            .mem_mix(0.5, 0.4)
            .branches(0.2)
            .build();
    }

    #[test]
    fn validate_rejects_bad_regions() {
        let mut p = WorkloadProfile::builder("t", Suite::Cpu2000).build();
        p.regions = vec![MemRegion::kib(64, 0.5, AccessPattern::Random)];
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("region access fractions"));
        p.regions.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_scalars() {
        let mut p = WorkloadProfile::builder("t", Suite::Cpu2000).build();
        p.br_bias = 1.5;
        assert!(p.validate().is_err());
        p.br_bias = 0.6;
        p.mean_dep_distance = 0.2;
        assert!(p.validate().is_err());
        p.mean_dep_distance = 4.0;
        p.uop_expansion = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn cracking_guards_range() {
        assert_eq!(Cracking::new(1.2).factor, 1.2);
        assert_eq!(Cracking::default().factor, 1.0);
    }

    #[test]
    #[should_panic(expected = "sane range")]
    fn cracking_rejects_extremes() {
        let _ = Cracking::new(10.0);
    }

    #[test]
    fn region_kib_constructor() {
        let r = MemRegion::kib(4, 1.0, AccessPattern::PointerChase);
        assert_eq!(r.footprint, 4096);
    }
}
