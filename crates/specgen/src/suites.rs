//! The 103 SPEC-like benchmark–input profiles: 48 CPU2000 pairs and 55
//! CPU2006 pairs, matching the population sizes of the paper (§4).
//!
//! Each profile's parameters are calibrated to the published character of
//! its namesake (instruction mix, code and data footprints, branch
//! behaviour, pointer-chasing vs. streaming) so that the synthetic
//! population reproduces the paper's landscape:
//!
//! * memory-hungry CPU2006 codes (`mcf`, `lbm`, `milc`, `soplex`,
//!   `libquantum`, `GemsFDTD`) whose footprints straddle the Pentium 4 /
//!   Core 2 / Core i7 cache-size ladder,
//! * compute-bound FP outliers with tiny miss and misprediction rates
//!   (`calculix`, `gromacs`, `gamess`, `namd`, `povray`) that the paper
//!   singles out as hardest to predict,
//! * branchy integer codes (`crafty`, `gobmk`, `sjeng`, `astar`),
//! * big-code front-end-stressing workloads (`gcc`, `perlbmk`/`perlbench`,
//!   `vortex`, `xalancbmk`, `eon`).
//!
//! The footprint numbers are scaled down from the real suites (which run
//! hundreds of billions of instructions over GiB-scale data) so that a few
//! million simulated µops traverse a proportionate working set, but the
//! *ordering* of pressure between benchmarks — and critically, where each
//! footprint falls relative to each machine's cache sizes — follows the
//! real suites.

use crate::profile::{AccessPattern, MemRegion, WorkloadProfile};
use pmu::Suite;

/// Region pattern shorthand used by the static tables.
#[derive(Debug, Clone, Copy)]
enum Pat {
    /// Sequential, dense (8-byte stride): high spatial locality.
    Dense,
    /// Sequential with a 16-byte stride: streaming array traversal
    /// (a handful of accesses per cache line, as real array codes do).
    Stream,
    /// Uniform random within the footprint.
    Rand,
    /// Pointer chasing (dependent loads).
    Chase,
}

/// One row of the static benchmark tables.
struct Row {
    name: &'static str,
    /// FP µop fraction.
    fp: f64,
    /// Load / store / branch macro fractions.
    load: f64,
    store: f64,
    branch: f64,
    /// Mean dependence distance (ILP) and FP chain probability.
    dep: f64,
    chain: f64,
    /// Code footprint (KiB), hot dynamic fraction, hot size fraction.
    code_kib: u64,
    hot: f64,
    hot_sz: f64,
    /// Branch behaviour: data-dependent fraction, its bias, patterned fraction.
    rnd: f64,
    bias: f64,
    pat: f64,
    /// Baseline µop expansion.
    exp: f64,
    /// Data regions: (KiB, access fraction, pattern).
    regions: &'static [(u64, f64, Pat)],
}

impl Row {
    fn build(&self, suite: Suite) -> WorkloadProfile {
        let regions = self
            .regions
            .iter()
            .map(|&(kib, frac, pat)| {
                let pattern = match pat {
                    Pat::Dense => AccessPattern::Sequential { stride: 8 },
                    Pat::Stream => AccessPattern::Sequential { stride: 16 },
                    Pat::Rand => AccessPattern::Random,
                    Pat::Chase => AccessPattern::PointerChase,
                };
                MemRegion::kib(kib, frac, pattern)
            })
            .collect();
        WorkloadProfile::builder(self.name, suite)
            .fp(self.fp)
            .mem_mix(self.load, self.store)
            .branches(self.branch)
            .ilp(self.dep, self.chain)
            .code(self.code_kib, self.hot, self.hot_sz)
            .branch_behaviour(self.rnd, self.bias, self.pat)
            .expansion(self.exp)
            .regions(regions)
            .build()
    }
}

/// SPEC CPU2000: 48 benchmark–input pairs.
///
/// # Examples
///
/// ```
/// let suite = specgen::suites::cpu2000();
/// assert_eq!(suite.len(), 48);
/// assert!(suite.iter().any(|p| p.name.as_ref() == "mcf.inp"));
/// ```
pub fn cpu2000() -> Vec<WorkloadProfile> {
    CPU2000_ROWS
        .iter()
        .map(|r| r.build(Suite::Cpu2000))
        .collect()
}

/// SPEC CPU2006: 55 benchmark–input pairs.
///
/// # Examples
///
/// ```
/// let suite = specgen::suites::cpu2006();
/// assert_eq!(suite.len(), 55);
/// assert!(suite.iter().any(|p| p.name.as_ref() == "calculix.hyperviscoplastic"));
/// ```
pub fn cpu2006() -> Vec<WorkloadProfile> {
    CPU2006_ROWS
        .iter()
        .map(|r| r.build(Suite::Cpu2006))
        .collect()
}

/// Looks a profile up by name across both suites.
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    cpu2000()
        .into_iter()
        .chain(cpu2006())
        .find(|p| p.name.as_ref() == name)
}

// ---------------------------------------------------------------------------
// CPU2000 — 33 integer pairs + 15 floating-point pairs.
// ---------------------------------------------------------------------------

#[rustfmt::skip]
const CPU2000_ROWS: [Row; 48] = [
    // --- gzip: compression; small hot loops, dense buffers, few misses.
    Row { name: "gzip.source",  fp: 0.0, load: 0.25, store: 0.11, branch: 0.15, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.96, hot_sz: 0.20, rnd: 0.050, bias: 0.72, pat: 0.30, exp: 1.35,
          regions: &[(24, 0.55, Pat::Dense), (192, 0.35, Pat::Rand), (384, 0.10, Pat::Stream)] },
    Row { name: "gzip.log",     fp: 0.0, load: 0.25, store: 0.11, branch: 0.15, dep: 4.2, chain: 0.2, code_kib: 40, hot: 0.96, hot_sz: 0.20, rnd: 0.040, bias: 0.75, pat: 0.30, exp: 1.35,
          regions: &[(24, 0.60, Pat::Dense), (128, 0.32, Pat::Rand), (384, 0.08, Pat::Stream)] },
    Row { name: "gzip.graphic", fp: 0.0, load: 0.26, store: 0.12, branch: 0.14, dep: 4.1, chain: 0.2, code_kib: 40, hot: 0.96, hot_sz: 0.20, rnd: 0.060, bias: 0.68, pat: 0.28, exp: 1.35,
          regions: &[(24, 0.50, Pat::Dense), (256, 0.38, Pat::Rand), (384, 0.12, Pat::Stream)] },
    Row { name: "gzip.random",  fp: 0.0, load: 0.26, store: 0.12, branch: 0.15, dep: 3.9, chain: 0.2, code_kib: 40, hot: 0.96, hot_sz: 0.20, rnd: 0.080, bias: 0.60, pat: 0.26, exp: 1.35,
          regions: &[(24, 0.50, Pat::Dense), (256, 0.40, Pat::Rand), (384, 0.10, Pat::Stream)] },
    Row { name: "gzip.program", fp: 0.0, load: 0.25, store: 0.11, branch: 0.15, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.96, hot_sz: 0.20, rnd: 0.050, bias: 0.70, pat: 0.30, exp: 1.35,
          regions: &[(24, 0.55, Pat::Dense), (192, 0.35, Pat::Rand), (384, 0.10, Pat::Stream)] },
    // --- vpr: place & route; branchy, pointer-ish graphs.
    Row { name: "vpr.place",    fp: 0.02, load: 0.27, store: 0.10, branch: 0.16, dep: 3.6, chain: 0.2, code_kib: 64, hot: 0.93, hot_sz: 0.15, rnd: 0.110, bias: 0.62, pat: 0.22, exp: 1.35,
          regions: &[(32, 0.45, Pat::Dense), (384, 0.40, Pat::Rand), (384, 0.15, Pat::Chase)] },
    Row { name: "vpr.route",    fp: 0.02, load: 0.29, store: 0.09, branch: 0.15, dep: 3.7, chain: 0.2, code_kib: 64, hot: 0.92, hot_sz: 0.15, rnd: 0.090, bias: 0.64, pat: 0.22, exp: 1.35,
          regions: &[(32, 0.40, Pat::Dense), (384, 0.40, Pat::Rand), (384, 0.20, Pat::Chase)] },
    // --- gcc: huge code footprint, front-end bound, modest data.
    Row { name: "gcc.166",      fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 640, hot: 0.70, hot_sz: 0.08, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    Row { name: "gcc.200",      fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 704, hot: 0.68, hot_sz: 0.08, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.48, Pat::Dense), (384, 0.36, Pat::Rand), (384, 0.16, Pat::Chase)] },
    Row { name: "gcc.expr",     fp: 0.0, load: 0.27, store: 0.13, branch: 0.18, dep: 4.2, chain: 0.2, code_kib: 576, hot: 0.72, hot_sz: 0.09, rnd: 0.075, bias: 0.65, pat: 0.25, exp: 1.40,
          regions: &[(48, 0.52, Pat::Dense), (384, 0.34, Pat::Rand), (384, 0.14, Pat::Chase)] },
    Row { name: "gcc.integrate",fp: 0.0, load: 0.26, store: 0.12, branch: 0.18, dep: 4.2, chain: 0.2, code_kib: 576, hot: 0.74, hot_sz: 0.09, rnd: 0.070, bias: 0.66, pat: 0.25, exp: 1.40,
          regions: &[(48, 0.54, Pat::Dense), (384, 0.32, Pat::Rand), (384, 0.14, Pat::Chase)] },
    Row { name: "gcc.scilab",   fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 640, hot: 0.70, hot_sz: 0.08, rnd: 0.075, bias: 0.65, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    // --- mcf: the canonical pointer chaser; giant sparse working set, MLP ~ 1.
    Row { name: "mcf.inp",      fp: 0.0, load: 0.34, store: 0.09, branch: 0.13, dep: 3.2, chain: 0.2, code_kib: 24, hot: 0.97, hot_sz: 0.35, rnd: 0.090, bias: 0.62, pat: 0.20, exp: 1.30,
          regions: &[(16, 0.25, Pat::Dense), (3072, 0.30, Pat::Rand), (8192, 0.45, Pat::Chase)] },
    // --- crafty: chess; very branchy, fits in cache.
    Row { name: "crafty.inp",   fp: 0.0, load: 0.26, store: 0.08, branch: 0.18, dep: 3.8, chain: 0.2, code_kib: 160, hot: 0.90, hot_sz: 0.18, rnd: 0.120, bias: 0.58, pat: 0.24, exp: 1.35,
          regions: &[(40, 0.60, Pat::Dense), (384, 0.30, Pat::Rand), (384, 0.10, Pat::Rand)] },
    // --- parser: dictionary walking, pointer heavy, medium code.
    Row { name: "parser.inp",   fp: 0.0, load: 0.28, store: 0.10, branch: 0.16, dep: 3.6, chain: 0.2, code_kib: 128, hot: 0.88, hot_sz: 0.14, rnd: 0.080, bias: 0.64, pat: 0.24, exp: 1.35,
          regions: &[(32, 0.45, Pat::Dense), (384, 0.35, Pat::Chase), (384, 0.20, Pat::Rand)] },
    // --- eon: C++ ray tracer; some FP, biggish code, tiny data.
    Row { name: "eon.cook",     fp: 0.12, load: 0.26, store: 0.12, branch: 0.11, dep: 5.0, chain: 0.35, code_kib: 256, hot: 0.85, hot_sz: 0.12, rnd: 0.030, bias: 0.72, pat: 0.24, exp: 1.40,
          regions: &[(24, 0.65, Pat::Dense), (256, 0.30, Pat::Rand), (384, 0.05, Pat::Stream)] },
    Row { name: "eon.kajiya",   fp: 0.13, load: 0.26, store: 0.12, branch: 0.11, dep: 5.0, chain: 0.35, code_kib: 256, hot: 0.85, hot_sz: 0.12, rnd: 0.030, bias: 0.72, pat: 0.24, exp: 1.40,
          regions: &[(24, 0.65, Pat::Dense), (256, 0.30, Pat::Rand), (384, 0.05, Pat::Stream)] },
    Row { name: "eon.rushmeier",fp: 0.12, load: 0.26, store: 0.12, branch: 0.11, dep: 5.0, chain: 0.35, code_kib: 256, hot: 0.86, hot_sz: 0.12, rnd: 0.030, bias: 0.72, pat: 0.24, exp: 1.40,
          regions: &[(24, 0.66, Pat::Dense), (224, 0.29, Pat::Rand), (384, 0.05, Pat::Stream)] },
    // --- perlbmk: interpreter; big code, indirect-ish branches, hash tables.
    Row { name: "perlbmk.diffmail",    fp: 0.0, load: 0.28, store: 0.13, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 512, hot: 0.78, hot_sz: 0.10, rnd: 0.065, bias: 0.66, pat: 0.27, exp: 1.40,
          regions: &[(40, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    Row { name: "perlbmk.makerand",    fp: 0.0, load: 0.27, store: 0.13, branch: 0.15, dep: 4.2, chain: 0.2, code_kib: 448, hot: 0.82, hot_sz: 0.10, rnd: 0.060, bias: 0.68, pat: 0.28, exp: 1.40,
          regions: &[(40, 0.58, Pat::Dense), (384, 0.32, Pat::Rand), (384, 0.10, Pat::Chase)] },
    Row { name: "perlbmk.perfect",     fp: 0.0, load: 0.28, store: 0.13, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 512, hot: 0.80, hot_sz: 0.10, rnd: 0.065, bias: 0.66, pat: 0.27, exp: 1.40,
          regions: &[(40, 0.52, Pat::Dense), (384, 0.34, Pat::Rand), (384, 0.14, Pat::Chase)] },
    Row { name: "perlbmk.splitmail.535", fp: 0.0, load: 0.28, store: 0.14, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 512, hot: 0.78, hot_sz: 0.10, rnd: 0.065, bias: 0.66, pat: 0.27, exp: 1.40,
          regions: &[(40, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    Row { name: "perlbmk.splitmail.704", fp: 0.0, load: 0.28, store: 0.14, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 512, hot: 0.78, hot_sz: 0.10, rnd: 0.065, bias: 0.66, pat: 0.27, exp: 1.40,
          regions: &[(40, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    Row { name: "perlbmk.splitmail.850", fp: 0.0, load: 0.28, store: 0.14, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 512, hot: 0.78, hot_sz: 0.10, rnd: 0.065, bias: 0.66, pat: 0.27, exp: 1.40,
          regions: &[(40, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    Row { name: "perlbmk.splitmail.957", fp: 0.0, load: 0.28, store: 0.14, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 512, hot: 0.78, hot_sz: 0.10, rnd: 0.065, bias: 0.66, pat: 0.27, exp: 1.40,
          regions: &[(40, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Chase)] },
    // --- gap: group theory; dense math over medium heaps.
    Row { name: "gap.inp",      fp: 0.0, load: 0.27, store: 0.12, branch: 0.14, dep: 4.5, chain: 0.2, code_kib: 192, hot: 0.88, hot_sz: 0.12, rnd: 0.050, bias: 0.70, pat: 0.28, exp: 1.35,
          regions: &[(32, 0.50, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.15, Pat::Stream)] },
    // --- vortex: OO database; large code, allocation heavy.
    Row { name: "vortex.lendian1", fp: 0.0, load: 0.29, store: 0.15, branch: 0.15, dep: 4.2, chain: 0.2, code_kib: 384, hot: 0.80, hot_sz: 0.10, rnd: 0.040, bias: 0.70, pat: 0.28, exp: 1.40,
          regions: &[(40, 0.45, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.20, Pat::Chase)] },
    Row { name: "vortex.lendian2", fp: 0.0, load: 0.29, store: 0.15, branch: 0.15, dep: 4.2, chain: 0.2, code_kib: 384, hot: 0.80, hot_sz: 0.10, rnd: 0.040, bias: 0.70, pat: 0.28, exp: 1.40,
          regions: &[(40, 0.45, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.20, Pat::Chase)] },
    Row { name: "vortex.lendian3", fp: 0.0, load: 0.29, store: 0.15, branch: 0.15, dep: 4.2, chain: 0.2, code_kib: 384, hot: 0.80, hot_sz: 0.10, rnd: 0.040, bias: 0.70, pat: 0.28, exp: 1.40,
          regions: &[(40, 0.45, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.20, Pat::Chase)] },
    // --- bzip2: block compression; dense hot arrays, some big-buffer misses.
    Row { name: "bzip2.source",  fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 32, hot: 0.97, hot_sz: 0.25, rnd: 0.070, bias: 0.64, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.45, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.20, Pat::Stream)] },
    Row { name: "bzip2.graphic", fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 32, hot: 0.97, hot_sz: 0.25, rnd: 0.080, bias: 0.62, pat: 0.26, exp: 1.30,
          regions: &[(64, 0.42, Pat::Dense), (384, 0.38, Pat::Rand), (384, 0.20, Pat::Stream)] },
    Row { name: "bzip2.program", fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 32, hot: 0.97, hot_sz: 0.25, rnd: 0.070, bias: 0.64, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.45, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.20, Pat::Stream)] },
    // --- twolf: place/route; random small-struct accesses, branchy.
    Row { name: "twolf.inp",    fp: 0.01, load: 0.28, store: 0.09, branch: 0.16, dep: 3.5, chain: 0.2, code_kib: 96, hot: 0.90, hot_sz: 0.15, rnd: 0.100, bias: 0.60, pat: 0.24, exp: 1.35,
          regions: &[(32, 0.50, Pat::Dense), (384, 0.40, Pat::Rand), (384, 0.10, Pat::Chase)] },
    // --- CPU2000 floating point ------------------------------------------
    // wupwise: lattice QCD-ish; streaming with good ILP.
    Row { name: "wupwise.inp",  fp: 0.34, load: 0.28, store: 0.10, branch: 0.05, dep: 9.0, chain: 0.35, code_kib: 48, hot: 0.95, hot_sz: 0.25, rnd: 0.015, bias: 0.80, pat: 0.20, exp: 1.25,
          regions: &[(32, 0.30, Pat::Dense), (384, 0.55, Pat::Stream), (384, 0.15, Pat::Rand)] },
    // swim: shallow-water stencil; pure streaming, very memory bound.
    Row { name: "swim.inp",     fp: 0.36, load: 0.30, store: 0.12, branch: 0.03, dep: 12.0, chain: 0.25, code_kib: 24, hot: 0.98, hot_sz: 0.40, rnd: 0.010, bias: 0.85, pat: 0.15, exp: 1.20,
          regions: &[(16, 0.15, Pat::Dense), (3840, 0.70, Pat::Stream), (3840, 0.15, Pat::Stream)] },
    // mgrid: multigrid stencil; streaming + blocked reuse.
    Row { name: "mgrid.inp",    fp: 0.38, load: 0.31, store: 0.09, branch: 0.03, dep: 11.0, chain: 0.28, code_kib: 24, hot: 0.98, hot_sz: 0.40, rnd: 0.010, bias: 0.85, pat: 0.15, exp: 1.20,
          regions: &[(24, 0.25, Pat::Dense), (3584, 0.60, Pat::Stream), (3584, 0.15, Pat::Rand)] },
    // applu: PDE solver; streaming with some reuse.
    Row { name: "applu.inp",    fp: 0.37, load: 0.29, store: 0.11, branch: 0.04, dep: 10.0, chain: 0.30, code_kib: 40, hot: 0.96, hot_sz: 0.30, rnd: 0.010, bias: 0.85, pat: 0.16, exp: 1.20,
          regions: &[(32, 0.25, Pat::Dense), (3072, 0.60, Pat::Stream), (3072, 0.15, Pat::Rand)] },
    // mesa: software rasteriser; FP but cache resident.
    Row { name: "mesa.inp",     fp: 0.22, load: 0.25, store: 0.13, branch: 0.08, dep: 6.0, chain: 0.35, code_kib: 128, hot: 0.92, hot_sz: 0.15, rnd: 0.025, bias: 0.75, pat: 0.24, exp: 1.30,
          regions: &[(32, 0.55, Pat::Dense), (384, 0.35, Pat::Rand), (384, 0.10, Pat::Stream)] },
    // galgel: fluid dynamics; blocked linear algebra, L1-resident kernels.
    Row { name: "galgel.inp",   fp: 0.40, load: 0.30, store: 0.07, branch: 0.04, dep: 8.0, chain: 0.40, code_kib: 48, hot: 0.96, hot_sz: 0.30, rnd: 0.010, bias: 0.85, pat: 0.16, exp: 1.20,
          regions: &[(28, 0.60, Pat::Dense), (384, 0.30, Pat::Stream), (384, 0.10, Pat::Rand)] },
    // art: neural net scan; tiny code, repeated sweeps over ~4 MiB.
    Row { name: "art.110",      fp: 0.28, load: 0.33, store: 0.08, branch: 0.08, dep: 7.0, chain: 0.30, code_kib: 16, hot: 0.99, hot_sz: 0.50, rnd: 0.020, bias: 0.78, pat: 0.18, exp: 1.20,
          regions: &[(16, 0.15, Pat::Dense), (1792, 0.75, Pat::Stream), (1792, 0.10, Pat::Rand)] },
    Row { name: "art.470",      fp: 0.28, load: 0.33, store: 0.08, branch: 0.08, dep: 7.0, chain: 0.30, code_kib: 16, hot: 0.99, hot_sz: 0.50, rnd: 0.020, bias: 0.78, pat: 0.18, exp: 1.20,
          regions: &[(16, 0.15, Pat::Dense), (1920, 0.75, Pat::Stream), (1920, 0.10, Pat::Rand)] },
    // equake: earthquake FEM; sparse matrix-vector, irregular.
    Row { name: "equake.inp",   fp: 0.30, load: 0.32, store: 0.09, branch: 0.06, dep: 6.5, chain: 0.35, code_kib: 32, hot: 0.96, hot_sz: 0.30, rnd: 0.015, bias: 0.80, pat: 0.18, exp: 1.25,
          regions: &[(24, 0.25, Pat::Dense), (2560, 0.45, Pat::Rand), (2560, 0.30, Pat::Stream)] },
    // facerec: image matching; streaming with FFT-ish phases.
    Row { name: "facerec.inp",  fp: 0.32, load: 0.29, store: 0.09, branch: 0.05, dep: 8.5, chain: 0.32, code_kib: 40, hot: 0.95, hot_sz: 0.28, rnd: 0.015, bias: 0.80, pat: 0.18, exp: 1.22,
          regions: &[(32, 0.35, Pat::Dense), (384, 0.50, Pat::Stream), (384, 0.15, Pat::Rand)] },
    // ammp: molecular dynamics; neighbour lists, some chasing.
    Row { name: "ammp.inp",     fp: 0.31, load: 0.30, store: 0.10, branch: 0.06, dep: 6.0, chain: 0.45, code_kib: 48, hot: 0.94, hot_sz: 0.25, rnd: 0.020, bias: 0.78, pat: 0.18, exp: 1.25,
          regions: &[(32, 0.30, Pat::Dense), (384, 0.40, Pat::Rand), (384, 0.30, Pat::Chase)] },
    // lucas: FFT primality; large-stride streaming.
    Row { name: "lucas.inp",    fp: 0.38, load: 0.28, store: 0.11, branch: 0.03, dep: 10.0, chain: 0.35, code_kib: 24, hot: 0.98, hot_sz: 0.40, rnd: 0.010, bias: 0.85, pat: 0.14, exp: 1.20,
          regions: &[(16, 0.20, Pat::Dense), (3072, 0.65, Pat::Stream), (3072, 0.15, Pat::Rand)] },
    // fma3d: crash simulation; mixed element kernels.
    Row { name: "fma3d.inp",    fp: 0.33, load: 0.29, store: 0.12, branch: 0.05, dep: 7.5, chain: 0.38, code_kib: 192, hot: 0.88, hot_sz: 0.15, rnd: 0.020, bias: 0.78, pat: 0.18, exp: 1.25,
          regions: &[(40, 0.35, Pat::Dense), (384, 0.45, Pat::Stream), (384, 0.20, Pat::Rand)] },
    // sixtrack: particle tracking; tiny resident working set, chained FP.
    Row { name: "sixtrack.inp", fp: 0.42, load: 0.26, store: 0.08, branch: 0.04, dep: 5.5, chain: 0.55, code_kib: 96, hot: 0.94, hot_sz: 0.20, rnd: 0.010, bias: 0.85, pat: 0.14, exp: 1.22,
          regions: &[(48, 0.70, Pat::Dense), (384, 0.25, Pat::Stream), (384, 0.05, Pat::Rand)] },
    // apsi: weather; blocked stencils.
    Row { name: "apsi.inp",     fp: 0.36, load: 0.28, store: 0.10, branch: 0.04, dep: 9.0, chain: 0.32, code_kib: 64, hot: 0.95, hot_sz: 0.25, rnd: 0.015, bias: 0.82, pat: 0.16, exp: 1.22,
          regions: &[(40, 0.30, Pat::Dense), (384, 0.55, Pat::Stream), (384, 0.15, Pat::Rand)] },
];

// ---------------------------------------------------------------------------
// CPU2006 — 35 integer pairs + 20 floating-point pairs. Bigger footprints
// than CPU2000 across the board (the paper leans on CPU2006 being more
// memory-intensive when explaining the Core i7's last-level-cache wins).
// ---------------------------------------------------------------------------

#[rustfmt::skip]
const CPU2006_ROWS: [Row; 55] = [
    // --- perlbench: interpreter, big code.
    Row { name: "perlbench.checkspam",  fp: 0.0, load: 0.28, store: 0.13, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 768, hot: 0.74, hot_sz: 0.08, rnd: 0.060, bias: 0.67, pat: 0.28, exp: 1.40,
          regions: &[(48, 0.48, Pat::Dense), (768, 0.36, Pat::Rand), (768, 0.16, Pat::Chase)] },
    Row { name: "perlbench.diffmail",   fp: 0.0, load: 0.28, store: 0.13, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 768, hot: 0.75, hot_sz: 0.08, rnd: 0.060, bias: 0.67, pat: 0.28, exp: 1.40,
          regions: &[(48, 0.50, Pat::Dense), (768, 0.35, Pat::Rand), (768, 0.15, Pat::Chase)] },
    Row { name: "perlbench.splitmail",  fp: 0.0, load: 0.28, store: 0.14, branch: 0.16, dep: 4.1, chain: 0.2, code_kib: 768, hot: 0.74, hot_sz: 0.08, rnd: 0.060, bias: 0.67, pat: 0.28, exp: 1.40,
          regions: &[(48, 0.48, Pat::Dense), (768, 0.36, Pat::Rand), (768, 0.16, Pat::Chase)] },
    // --- bzip2 (6 inputs).
    Row { name: "bzip2.source",   fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.97, hot_sz: 0.25, rnd: 0.070, bias: 0.64, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.42, Pat::Dense), (768, 0.38, Pat::Rand), (512, 0.20, Pat::Stream)] },
    Row { name: "bzip2.chicken",  fp: 0.0, load: 0.26, store: 0.11, branch: 0.13, dep: 4.1, chain: 0.2, code_kib: 40, hot: 0.97, hot_sz: 0.25, rnd: 0.060, bias: 0.66, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.45, Pat::Dense), (768, 0.35, Pat::Rand), (512, 0.20, Pat::Stream)] },
    Row { name: "bzip2.liberty",  fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.97, hot_sz: 0.25, rnd: 0.070, bias: 0.64, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.42, Pat::Dense), (768, 0.38, Pat::Rand), (512, 0.20, Pat::Stream)] },
    Row { name: "bzip2.program",  fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.97, hot_sz: 0.25, rnd: 0.070, bias: 0.64, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.44, Pat::Dense), (768, 0.36, Pat::Rand), (512, 0.20, Pat::Stream)] },
    Row { name: "bzip2.text",     fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.97, hot_sz: 0.25, rnd: 0.065, bias: 0.65, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.44, Pat::Dense), (768, 0.36, Pat::Rand), (512, 0.20, Pat::Stream)] },
    Row { name: "bzip2.combined", fp: 0.0, load: 0.26, store: 0.11, branch: 0.14, dep: 4.0, chain: 0.2, code_kib: 40, hot: 0.97, hot_sz: 0.25, rnd: 0.070, bias: 0.64, pat: 0.28, exp: 1.30,
          regions: &[(64, 0.42, Pat::Dense), (768, 0.38, Pat::Rand), (512, 0.20, Pat::Stream)] },
    // --- gcc (9 inputs): still the big-code champion.
    Row { name: "gcc.166",     fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 1024, hot: 0.66, hot_sz: 0.07, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.46, Pat::Dense), (768, 0.36, Pat::Rand), (768, 0.18, Pat::Chase)] },
    Row { name: "gcc.200",     fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 1024, hot: 0.65, hot_sz: 0.07, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.45, Pat::Dense), (768, 0.37, Pat::Rand), (768, 0.18, Pat::Chase)] },
    Row { name: "gcc.c-typeck",fp: 0.0, load: 0.27, store: 0.13, branch: 0.18, dep: 4.2, chain: 0.2, code_kib: 960, hot: 0.68, hot_sz: 0.07, rnd: 0.075, bias: 0.65, pat: 0.25, exp: 1.40,
          regions: &[(48, 0.48, Pat::Dense), (768, 0.36, Pat::Rand), (768, 0.16, Pat::Chase)] },
    Row { name: "gcc.cp-decl", fp: 0.0, load: 0.27, store: 0.13, branch: 0.18, dep: 4.2, chain: 0.2, code_kib: 960, hot: 0.68, hot_sz: 0.07, rnd: 0.075, bias: 0.65, pat: 0.25, exp: 1.40,
          regions: &[(48, 0.48, Pat::Dense), (768, 0.36, Pat::Rand), (768, 0.16, Pat::Chase)] },
    Row { name: "gcc.expr",    fp: 0.0, load: 0.27, store: 0.13, branch: 0.18, dep: 4.2, chain: 0.2, code_kib: 896, hot: 0.70, hot_sz: 0.08, rnd: 0.075, bias: 0.65, pat: 0.25, exp: 1.40,
          regions: &[(48, 0.50, Pat::Dense), (768, 0.34, Pat::Rand), (768, 0.16, Pat::Chase)] },
    Row { name: "gcc.expr2",   fp: 0.0, load: 0.27, store: 0.13, branch: 0.18, dep: 4.2, chain: 0.2, code_kib: 896, hot: 0.70, hot_sz: 0.08, rnd: 0.075, bias: 0.65, pat: 0.25, exp: 1.40,
          regions: &[(48, 0.50, Pat::Dense), (768, 0.34, Pat::Rand), (768, 0.16, Pat::Chase)] },
    Row { name: "gcc.g23",     fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 1024, hot: 0.66, hot_sz: 0.07, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.45, Pat::Dense), (768, 0.37, Pat::Rand), (768, 0.18, Pat::Chase)] },
    Row { name: "gcc.s04",     fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 1024, hot: 0.66, hot_sz: 0.07, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.45, Pat::Dense), (768, 0.37, Pat::Rand), (768, 0.18, Pat::Chase)] },
    Row { name: "gcc.scilab",  fp: 0.0, load: 0.27, store: 0.13, branch: 0.17, dep: 4.3, chain: 0.2, code_kib: 1024, hot: 0.67, hot_sz: 0.07, rnd: 0.070, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.46, Pat::Dense), (768, 0.36, Pat::Rand), (768, 0.18, Pat::Chase)] },
    // --- mcf: even bigger than 2000; the LLC/DTLB stress test.
    Row { name: "mcf.inp",     fp: 0.0, load: 0.35, store: 0.09, branch: 0.13, dep: 3.1, chain: 0.2, code_kib: 24, hot: 0.97, hot_sz: 0.35, rnd: 0.090, bias: 0.62, pat: 0.20, exp: 1.30,
          regions: &[(16, 0.20, Pat::Dense), (65536, 0.32, Pat::Rand), (131072, 0.48, Pat::Chase)] },
    // --- gobmk (5 inputs): Go engine; the branch-misprediction stress test.
    Row { name: "gobmk.13x13",   fp: 0.0, load: 0.26, store: 0.10, branch: 0.19, dep: 3.6, chain: 0.2, code_kib: 256, hot: 0.86, hot_sz: 0.14, rnd: 0.130, bias: 0.57, pat: 0.22, exp: 1.35,
          regions: &[(40, 0.55, Pat::Dense), (768, 0.35, Pat::Rand), (768, 0.10, Pat::Rand)] },
    Row { name: "gobmk.nngs",    fp: 0.0, load: 0.26, store: 0.10, branch: 0.19, dep: 3.6, chain: 0.2, code_kib: 256, hot: 0.86, hot_sz: 0.14, rnd: 0.135, bias: 0.56, pat: 0.22, exp: 1.35,
          regions: &[(40, 0.55, Pat::Dense), (768, 0.35, Pat::Rand), (768, 0.10, Pat::Rand)] },
    Row { name: "gobmk.score2",  fp: 0.0, load: 0.26, store: 0.10, branch: 0.19, dep: 3.6, chain: 0.2, code_kib: 256, hot: 0.86, hot_sz: 0.14, rnd: 0.130, bias: 0.57, pat: 0.22, exp: 1.35,
          regions: &[(40, 0.56, Pat::Dense), (768, 0.34, Pat::Rand), (768, 0.10, Pat::Rand)] },
    Row { name: "gobmk.trevorc", fp: 0.0, load: 0.26, store: 0.10, branch: 0.19, dep: 3.6, chain: 0.2, code_kib: 256, hot: 0.86, hot_sz: 0.14, rnd: 0.125, bias: 0.58, pat: 0.22, exp: 1.35,
          regions: &[(40, 0.55, Pat::Dense), (704, 0.35, Pat::Rand), (768, 0.10, Pat::Rand)] },
    Row { name: "gobmk.trevord", fp: 0.0, load: 0.26, store: 0.10, branch: 0.19, dep: 3.6, chain: 0.2, code_kib: 256, hot: 0.86, hot_sz: 0.14, rnd: 0.125, bias: 0.58, pat: 0.22, exp: 1.35,
          regions: &[(40, 0.55, Pat::Dense), (736, 0.35, Pat::Rand), (768, 0.10, Pat::Rand)] },
    // --- hmmer (2): profile HMM search; dense tables, superb locality.
    Row { name: "hmmer.nph3",  fp: 0.0, load: 0.30, store: 0.12, branch: 0.08, dep: 5.5, chain: 0.2, code_kib: 48, hot: 0.98, hot_sz: 0.30, rnd: 0.020, bias: 0.78, pat: 0.26, exp: 1.28,
          regions: &[(48, 0.75, Pat::Dense), (512, 0.20, Pat::Stream), (768, 0.05, Pat::Rand)] },
    Row { name: "hmmer.retro", fp: 0.0, load: 0.30, store: 0.12, branch: 0.08, dep: 5.5, chain: 0.2, code_kib: 48, hot: 0.98, hot_sz: 0.30, rnd: 0.020, bias: 0.78, pat: 0.26, exp: 1.28,
          regions: &[(48, 0.75, Pat::Dense), (448, 0.20, Pat::Stream), (768, 0.05, Pat::Rand)] },
    // --- sjeng: chess; branchy with big hash tables.
    Row { name: "sjeng.ref",   fp: 0.0, load: 0.25, store: 0.09, branch: 0.18, dep: 3.7, chain: 0.2, code_kib: 128, hot: 0.90, hot_sz: 0.16, rnd: 0.120, bias: 0.58, pat: 0.24, exp: 1.35,
          regions: &[(40, 0.50, Pat::Dense), (768, 0.40, Pat::Rand), (768, 0.10, Pat::Rand)] },
    // --- libquantum: the streaming/MLP poster child.
    Row { name: "libquantum.ref", fp: 0.0, load: 0.31, store: 0.12, branch: 0.12, dep: 8.0, chain: 0.2, code_kib: 16, hot: 0.99, hot_sz: 0.50, rnd: 0.015, bias: 0.85, pat: 0.20, exp: 1.25,
          regions: &[(16, 0.10, Pat::Dense), (32768, 0.80, Pat::Stream), (32768, 0.10, Pat::Stream)] },
    // --- h264ref (3): video encoder; dense motion search.
    Row { name: "h264ref.foreman_baseline", fp: 0.01, load: 0.29, store: 0.12, branch: 0.10, dep: 5.0, chain: 0.2, code_kib: 192, hot: 0.92, hot_sz: 0.14, rnd: 0.040, bias: 0.70, pat: 0.28, exp: 1.32,
          regions: &[(48, 0.60, Pat::Dense), (768, 0.30, Pat::Rand), (512, 0.10, Pat::Stream)] },
    Row { name: "h264ref.foreman_main",     fp: 0.01, load: 0.29, store: 0.12, branch: 0.10, dep: 5.0, chain: 0.2, code_kib: 192, hot: 0.92, hot_sz: 0.14, rnd: 0.040, bias: 0.70, pat: 0.28, exp: 1.32,
          regions: &[(48, 0.60, Pat::Dense), (768, 0.30, Pat::Rand), (512, 0.10, Pat::Stream)] },
    Row { name: "h264ref.sss_main",         fp: 0.01, load: 0.29, store: 0.12, branch: 0.10, dep: 5.0, chain: 0.2, code_kib: 192, hot: 0.92, hot_sz: 0.14, rnd: 0.040, bias: 0.70, pat: 0.28, exp: 1.32,
          regions: &[(48, 0.58, Pat::Dense), (768, 0.30, Pat::Rand), (512, 0.12, Pat::Stream)] },
    // --- omnetpp: discrete-event sim; pointer soup, big heap.
    Row { name: "omnetpp.ref", fp: 0.0, load: 0.30, store: 0.13, branch: 0.15, dep: 3.4, chain: 0.2, code_kib: 384, hot: 0.82, hot_sz: 0.10, rnd: 0.070, bias: 0.64, pat: 0.24, exp: 1.38,
          regions: &[(40, 0.35, Pat::Dense), (12288, 0.35, Pat::Chase), (24576, 0.30, Pat::Rand)] },
    // --- astar (2): path finding; branchy and miss heavy.
    Row { name: "astar.biglakes", fp: 0.0, load: 0.30, store: 0.10, branch: 0.15, dep: 3.4, chain: 0.2, code_kib: 32, hot: 0.96, hot_sz: 0.25, rnd: 0.100, bias: 0.60, pat: 0.22, exp: 1.30,
          regions: &[(24, 0.30, Pat::Dense), (10240, 0.40, Pat::Chase), (20480, 0.30, Pat::Rand)] },
    Row { name: "astar.rivers",   fp: 0.0, load: 0.30, store: 0.10, branch: 0.16, dep: 3.4, chain: 0.2, code_kib: 32, hot: 0.96, hot_sz: 0.25, rnd: 0.110, bias: 0.59, pat: 0.22, exp: 1.30,
          regions: &[(24, 0.30, Pat::Dense), (8192, 0.40, Pat::Chase), (16384, 0.30, Pat::Rand)] },
    // --- xalancbmk: XSLT; large code, pointer heavy.
    Row { name: "xalancbmk.ref", fp: 0.0, load: 0.31, store: 0.12, branch: 0.16, dep: 3.8, chain: 0.2, code_kib: 896, hot: 0.72, hot_sz: 0.08, rnd: 0.060, bias: 0.66, pat: 0.26, exp: 1.40,
          regions: &[(48, 0.40, Pat::Dense), (768, 0.35, Pat::Chase), (768, 0.25, Pat::Rand)] },
    // --- CPU2006 floating point ------------------------------------------
    // bwaves: blast waves; huge streaming.
    Row { name: "bwaves.ref",  fp: 0.40, load: 0.29, store: 0.09, branch: 0.03, dep: 12.0, chain: 0.25, code_kib: 32, hot: 0.98, hot_sz: 0.35, rnd: 0.010, bias: 0.85, pat: 0.14, exp: 1.20,
          regions: &[(24, 0.15, Pat::Dense), (49152, 0.70, Pat::Stream), (49152, 0.15, Pat::Rand)] },
    // gamess (3): quantum chemistry; compute bound, cache resident.
    Row { name: "gamess.cytosine",   fp: 0.44, load: 0.27, store: 0.08, branch: 0.05, dep: 5.0, chain: 0.55, code_kib: 256, hot: 0.92, hot_sz: 0.15, rnd: 0.007, bias: 0.85, pat: 0.12, exp: 1.22,
          regions: &[(40, 0.70, Pat::Dense), (384, 0.25, Pat::Stream), (768, 0.05, Pat::Rand)] },
    Row { name: "gamess.gradient",   fp: 0.44, load: 0.27, store: 0.08, branch: 0.05, dep: 5.0, chain: 0.55, code_kib: 256, hot: 0.92, hot_sz: 0.15, rnd: 0.007, bias: 0.85, pat: 0.12, exp: 1.22,
          regions: &[(40, 0.70, Pat::Dense), (448, 0.25, Pat::Stream), (768, 0.05, Pat::Rand)] },
    Row { name: "gamess.triazolium", fp: 0.44, load: 0.27, store: 0.08, branch: 0.05, dep: 5.0, chain: 0.55, code_kib: 256, hot: 0.92, hot_sz: 0.15, rnd: 0.007, bias: 0.85, pat: 0.12, exp: 1.22,
          regions: &[(40, 0.70, Pat::Dense), (512, 0.25, Pat::Stream), (768, 0.05, Pat::Rand)] },
    // milc: lattice QCD; big streaming + random, LLC/DTLB heavy.
    Row { name: "milc.ref",    fp: 0.36, load: 0.31, store: 0.11, branch: 0.03, dep: 10.0, chain: 0.30, code_kib: 40, hot: 0.97, hot_sz: 0.30, rnd: 0.010, bias: 0.85, pat: 0.14, exp: 1.20,
          regions: &[(24, 0.10, Pat::Dense), (40960, 0.55, Pat::Stream), (81920, 0.35, Pat::Rand)] },
    // zeusmp: astrophysics CFD; streaming.
    Row { name: "zeusmp.ref",  fp: 0.38, load: 0.29, store: 0.11, branch: 0.03, dep: 11.0, chain: 0.28, code_kib: 64, hot: 0.96, hot_sz: 0.25, rnd: 0.010, bias: 0.85, pat: 0.14, exp: 1.20,
          regions: &[(32, 0.20, Pat::Dense), (24576, 0.65, Pat::Stream), (24576, 0.15, Pat::Rand)] },
    // gromacs: molecular dynamics; the paper's low-miss outlier.
    Row { name: "gromacs.ref", fp: 0.45, load: 0.28, store: 0.09, branch: 0.04, dep: 5.2, chain: 0.60, code_kib: 96, hot: 0.95, hot_sz: 0.20, rnd: 0.006, bias: 0.88, pat: 0.10, exp: 1.22,
          regions: &[(32, 0.75, Pat::Dense), (256, 0.20, Pat::Stream), (768, 0.05, Pat::Rand)] },
    // cactusADM: numerical relativity; stencil streaming.
    Row { name: "cactusADM.ref", fp: 0.41, load: 0.30, store: 0.11, branch: 0.02, dep: 11.5, chain: 0.30, code_kib: 96, hot: 0.96, hot_sz: 0.22, rnd: 0.007, bias: 0.85, pat: 0.12, exp: 1.20,
          regions: &[(32, 0.15, Pat::Dense), (28672, 0.70, Pat::Stream), (28672, 0.15, Pat::Rand)] },
    // leslie3d: combustion CFD; streaming.
    Row { name: "leslie3d.ref", fp: 0.39, load: 0.30, store: 0.10, branch: 0.03, dep: 11.0, chain: 0.28, code_kib: 48, hot: 0.97, hot_sz: 0.28, rnd: 0.010, bias: 0.85, pat: 0.14, exp: 1.20,
          regions: &[(24, 0.15, Pat::Dense), (22528, 0.70, Pat::Stream), (22528, 0.15, Pat::Rand)] },
    // namd: molecular dynamics; compute bound.
    Row { name: "namd.ref",    fp: 0.43, load: 0.28, store: 0.08, branch: 0.04, dep: 6.0, chain: 0.50, code_kib: 96, hot: 0.95, hot_sz: 0.18, rnd: 0.007, bias: 0.86, pat: 0.12, exp: 1.22,
          regions: &[(40, 0.65, Pat::Dense), (512, 0.25, Pat::Stream), (768, 0.10, Pat::Rand)] },
    // dealII: FEM library; C++ with decent locality.
    Row { name: "dealII.ref",  fp: 0.32, load: 0.29, store: 0.11, branch: 0.08, dep: 5.5, chain: 0.40, code_kib: 512, hot: 0.84, hot_sz: 0.10, rnd: 0.025, bias: 0.76, pat: 0.22, exp: 1.32,
          regions: &[(40, 0.50, Pat::Dense), (768, 0.32, Pat::Rand), (512, 0.18, Pat::Stream)] },
    // soplex (2): LP solver; sparse matrices, LLC + DTLB heavy, high fp.
    Row { name: "soplex.pds-50", fp: 0.30, load: 0.32, store: 0.09, branch: 0.08, dep: 5.8, chain: 0.35, code_kib: 256, hot: 0.88, hot_sz: 0.12, rnd: 0.030, bias: 0.72, pat: 0.20, exp: 1.28,
          regions: &[(32, 0.20, Pat::Dense), (30720, 0.45, Pat::Rand), (30720, 0.35, Pat::Stream)] },
    Row { name: "soplex.ref",    fp: 0.30, load: 0.32, store: 0.09, branch: 0.08, dep: 5.8, chain: 0.35, code_kib: 256, hot: 0.88, hot_sz: 0.12, rnd: 0.030, bias: 0.72, pat: 0.20, exp: 1.28,
          regions: &[(32, 0.20, Pat::Dense), (24576, 0.45, Pat::Rand), (24576, 0.35, Pat::Stream)] },
    // povray: ray tracer; compute bound, tiny data.
    Row { name: "povray.ref",  fp: 0.38, load: 0.27, store: 0.10, branch: 0.09, dep: 5.0, chain: 0.50, code_kib: 384, hot: 0.88, hot_sz: 0.12, rnd: 0.020, bias: 0.80, pat: 0.18, exp: 1.30,
          regions: &[(32, 0.75, Pat::Dense), (256, 0.20, Pat::Rand), (512, 0.05, Pat::Stream)] },
    // calculix: the paper's hardest outlier: minimal misses everywhere.
    Row { name: "calculix.hyperviscoplastic", fp: 0.46, load: 0.27, store: 0.08, branch: 0.03, dep: 5.5, chain: 0.58, code_kib: 192, hot: 0.95, hot_sz: 0.15, rnd: 0.005, bias: 0.90, pat: 0.10, exp: 1.20,
          regions: &[(36, 0.75, Pat::Dense), (320, 0.20, Pat::Stream), (768, 0.05, Pat::Rand)] },
    // GemsFDTD: electromagnetics; giant streaming.
    Row { name: "GemsFDTD.ref", fp: 0.39, load: 0.30, store: 0.11, branch: 0.02, dep: 11.0, chain: 0.28, code_kib: 64, hot: 0.96, hot_sz: 0.25, rnd: 0.007, bias: 0.85, pat: 0.12, exp: 1.20,
          regions: &[(32, 0.12, Pat::Dense), (36864, 0.68, Pat::Stream), (36864, 0.20, Pat::Rand)] },
    // tonto: quantum crystallography; compute with medium data.
    Row { name: "tonto.ref",   fp: 0.40, load: 0.28, store: 0.10, branch: 0.05, dep: 5.5, chain: 0.48, code_kib: 384, hot: 0.90, hot_sz: 0.12, rnd: 0.010, bias: 0.84, pat: 0.14, exp: 1.24,
          regions: &[(40, 0.60, Pat::Dense), (512, 0.30, Pat::Stream), (768, 0.10, Pat::Rand)] },
    // lbm: lattice Boltzmann; the purest stream in the suite.
    Row { name: "lbm.ref",     fp: 0.36, load: 0.29, store: 0.14, branch: 0.01, dep: 13.0, chain: 0.22, code_kib: 16, hot: 0.99, hot_sz: 0.60, rnd: 0.005, bias: 0.90, pat: 0.10, exp: 1.18,
          regions: &[(16, 0.08, Pat::Dense), (57344, 0.77, Pat::Stream), (57344, 0.15, Pat::Stream)] },
    // wrf: weather; mixed stencils.
    Row { name: "wrf.ref",     fp: 0.37, load: 0.29, store: 0.11, branch: 0.05, dep: 9.0, chain: 0.32, code_kib: 768, hot: 0.85, hot_sz: 0.10, rnd: 0.015, bias: 0.82, pat: 0.16, exp: 1.24,
          regions: &[(40, 0.30, Pat::Dense), (512, 0.50, Pat::Stream), (768, 0.20, Pat::Rand)] },
    // sphinx3: speech recognition; streaming scores + random lexicon.
    Row { name: "sphinx3.an4", fp: 0.30, load: 0.31, store: 0.08, branch: 0.08, dep: 7.0, chain: 0.32, code_kib: 128, hot: 0.93, hot_sz: 0.15, rnd: 0.025, bias: 0.75, pat: 0.20, exp: 1.26,
          regions: &[(32, 0.25, Pat::Dense), (512, 0.55, Pat::Stream), (768, 0.20, Pat::Rand)] },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(cpu2000().len(), 48, "48 CPU2000 benchmark-input pairs");
        assert_eq!(cpu2006().len(), 55, "55 CPU2006 benchmark-input pairs");
    }

    #[test]
    fn all_profiles_validate() {
        for p in cpu2000().iter().chain(cpu2006().iter()) {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_are_unique_within_suite() {
        for suite in [cpu2000(), cpu2006()] {
            let mut names: Vec<&str> = suite.iter().map(|p| p.name.as_ref()).collect();
            let n = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), n);
        }
    }

    #[test]
    fn suite_fields_are_set() {
        assert!(cpu2000().iter().all(|p| p.suite == Suite::Cpu2000));
        assert!(cpu2006().iter().all(|p| p.suite == Suite::Cpu2006));
    }

    #[test]
    fn by_name_finds_profiles() {
        assert!(by_name("lbm.ref").is_some());
        assert!(by_name("swim.inp").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn population_is_diverse() {
        // The model-fitting story needs spread in every input dimension.
        let all: Vec<_> = cpu2000().into_iter().chain(cpu2006()).collect();
        let fps: Vec<f64> = all.iter().map(|p| p.fp_frac).collect();
        assert!(fps.iter().cloned().fold(0.0, f64::max) > 0.4);
        assert!(fps.iter().cloned().fold(1.0, f64::min) == 0.0);
        let code: Vec<u64> = all.iter().map(|p| p.code_footprint).collect();
        assert!(code.iter().max().unwrap() >= &(896 * 1024));
        assert!(code.iter().min().unwrap() <= &(24 * 1024));
        let biggest_region: u64 = all
            .iter()
            .flat_map(|p| p.regions.iter().map(|r| r.footprint))
            .max()
            .unwrap();
        assert!(
            biggest_region >= 128 * 1024 * 1024 / 2,
            "needs > LLC footprints"
        );
    }

    #[test]
    fn cpu2006_is_more_memory_intensive_on_average() {
        // The paper's Fig. 6 discussion depends on this suite-level contrast.
        let mean_big_region = |suite: Vec<WorkloadProfile>| -> f64 {
            let sum: f64 = suite
                .iter()
                .map(|p| {
                    p.regions
                        .iter()
                        .map(|r| r.footprint as f64 * r.access_fraction)
                        .sum::<f64>()
                })
                .sum();
            sum / 1e6
        };
        assert!(mean_big_region(cpu2006()) > mean_big_region(cpu2000()) * 1.3);
    }

    #[test]
    fn outliers_have_outlier_character() {
        let calculix = by_name("calculix.hyperviscoplastic").unwrap();
        let mcf2006 = cpu2006()
            .into_iter()
            .find(|p| p.name.as_ref() == "mcf.inp")
            .unwrap();
        // calculix: tiny branch-misprediction exposure and tiny footprint.
        assert!(calculix.br_random_frac <= 0.02);
        let calculix_fp: u64 = calculix.regions.iter().map(|r| r.footprint).max().unwrap();
        let mcf_fp: u64 = mcf2006.regions.iter().map(|r| r.footprint).max().unwrap();
        assert!(mcf_fp > calculix_fp * 50);
    }
}
