//! The micro-operation vocabulary shared between the workload generator and
//! the simulator.

use std::fmt;
use std::num::NonZeroU32;

/// Functional class of a micro-operation.
///
/// The class determines which functional unit executes the µop and its base
/// execution latency (set by the machine configuration, not here — a P4
/// multiply is not a Core 2 multiply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UopKind {
    /// Simple integer ALU operation (add, logic, compare, shift).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
}

impl UopKind {
    /// True for the floating-point classes (the `fp` fraction in Eq. 2/5 of
    /// the paper counts these).
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, UopKind::FpAdd | UopKind::FpMul | UopKind::FpDiv)
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }

    /// All kinds, for exhaustive iteration in tests.
    pub const ALL: [UopKind; 9] = [
        UopKind::IntAlu,
        UopKind::IntMul,
        UopKind::IntDiv,
        UopKind::FpAdd,
        UopKind::FpMul,
        UopKind::FpDiv,
        UopKind::Load,
        UopKind::Store,
        UopKind::Branch,
    ];
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::IntAlu => "int_alu",
            UopKind::IntMul => "int_mul",
            UopKind::IntDiv => "int_div",
            UopKind::FpAdd => "fp_add",
            UopKind::FpMul => "fp_mul",
            UopKind::FpDiv => "fp_div",
            UopKind::Load => "load",
            UopKind::Store => "store",
            UopKind::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// How predictable a branch's outcome stream is.
///
/// The generator labels each static branch with a class; the simulator's
/// *predictor* decides whether it actually mispredicts, so misprediction
/// rates are emergent and differ between the Pentium 4, Core 2 and Core i7
/// predictor configurations (the paper's §6 hinges on exactly that
/// difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Heavily biased (e.g. error-check branches): almost always one way.
    Biased,
    /// Loop back-edge: taken for every iteration except the exit.
    Loop,
    /// Short repeating pattern: predictable with enough local history.
    Patterned,
    /// Data-dependent: outcome is effectively a biased coin flip.
    DataDependent,
}

/// Branch behaviour attached to a branch µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Actual outcome of this dynamic instance.
    pub taken: bool,
    /// Target PC if taken (the fall-through is `pc + 4`).
    pub target: u64,
    /// Predictability class of the static branch.
    pub class: BranchClass,
}

/// One dynamic micro-operation of a workload trace.
///
/// Register dependences are encoded positionally: `dep1`/`dep2` are
/// *backward distances* in µops ("this µop reads the result of the µop
/// `d` slots earlier"), which is how trace-driven models such as interval
/// simulation encode data flow without full register renaming.
///
/// # Examples
///
/// ```
/// use specgen::{MicroOp, UopKind};
///
/// let op = MicroOp::new(UopKind::IntAlu, 0x1000);
/// assert_eq!(op.kind, UopKind::IntAlu);
/// assert!(op.addr.is_none());
/// assert!(!op.kind.is_fp());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    /// Functional class.
    pub kind: UopKind,
    /// Program counter of the parent macro-instruction.
    pub pc: u64,
    /// Backward distance to the producer of the first source operand.
    pub dep1: Option<NonZeroU32>,
    /// Backward distance to the producer of the second source operand.
    pub dep2: Option<NonZeroU32>,
    /// Effective (virtual) address for loads and stores.
    pub addr: Option<u64>,
    /// True for the first µop cracked from a macro-instruction; the count of
    /// these is the retired macro-instruction count.
    pub macro_first: bool,
    /// Branch outcome, for branch µops.
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// Creates a plain (non-memory, non-branch, dependence-free) µop.
    pub fn new(kind: UopKind, pc: u64) -> Self {
        Self {
            kind,
            pc,
            dep1: None,
            dep2: None,
            addr: None,
            macro_first: true,
            branch: None,
        }
    }

    /// Sets the first dependence distance (`0` is treated as "no dependence").
    pub fn with_dep1(mut self, distance: u32) -> Self {
        self.dep1 = NonZeroU32::new(distance);
        self
    }

    /// Sets the second dependence distance (`0` is treated as "no dependence").
    pub fn with_dep2(mut self, distance: u32) -> Self {
        self.dep2 = NonZeroU32::new(distance);
        self
    }

    /// Sets the effective address (for loads/stores).
    pub fn with_addr(mut self, addr: u64) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Attaches branch behaviour (for branch µops).
    pub fn with_branch(mut self, info: BranchInfo) -> Self {
        self.branch = Some(info);
        self
    }

    /// Marks whether this is the first µop of its macro-instruction.
    pub fn with_macro_first(mut self, first: bool) -> Self {
        self.macro_first = first;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(UopKind::FpMul.is_fp());
        assert!(!UopKind::Load.is_fp());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::Branch.is_mem());
        // Exactly three FP classes and two memory classes.
        assert_eq!(UopKind::ALL.iter().filter(|k| k.is_fp()).count(), 3);
        assert_eq!(UopKind::ALL.iter().filter(|k| k.is_mem()).count(), 2);
    }

    #[test]
    fn builder_chains() {
        let op = MicroOp::new(UopKind::Load, 0x40)
            .with_dep1(3)
            .with_dep2(0)
            .with_addr(0xdead_beef)
            .with_macro_first(false);
        assert_eq!(op.dep1.map(NonZeroU32::get), Some(3));
        assert!(op.dep2.is_none(), "zero distance means no dependence");
        assert_eq!(op.addr, Some(0xdead_beef));
        assert!(!op.macro_first);
    }

    #[test]
    fn branch_info_round_trips() {
        let info = BranchInfo {
            taken: true,
            target: 0x100,
            class: BranchClass::Loop,
        };
        let op = MicroOp::new(UopKind::Branch, 0x0).with_branch(info);
        assert_eq!(op.branch, Some(info));
    }

    #[test]
    fn microop_is_compact() {
        // The simulator touches millions of these; keep them cache-friendly.
        assert!(std::mem::size_of::<MicroOp>() <= 64);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(UopKind::FpDiv.to_string(), "fp_div");
        assert_eq!(UopKind::IntAlu.to_string(), "int_alu");
    }
}
