//! Byte-identity lockdown for the parallel perf paths (PR 4's
//! non-negotiable invariant, extended by PR 9): any thread budget must
//! produce bit-identical `ModelParams` and objective to the
//! strictly-sequential path, for every paper machine; the work-stealing
//! collect pool must produce byte-identical record streams at any worker
//! count; and because thread budgets are invisible to cache keys and
//! records digests, snapshots persisted under one budget must warm-load
//! under any other.

use cpistack::model::workbench::Workbench;
use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::service::{CpiService, ModelKey, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::SimSource;
use pmu::{RunRecord, Suite};

const UOPS: u64 = 6_000;
const SEED: u64 = 2024;

fn records_for(machine: &MachineConfig) -> Vec<RunRecord> {
    SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(14)
                .collect(),
        )
        .uops(UOPS)
        .seed(SEED)
        .collect_config(machine)
}

#[test]
fn parallel_fit_is_bit_identical_for_every_paper_machine() {
    for machine in MachineConfig::paper_machines() {
        let arch = MicroarchParams::from_machine(&machine);
        let records = records_for(&machine);
        let sequential = InferredModel::fit(&arch, &records, &FitOptions::quick().with_threads(1))
            .expect("sequential fit");
        for threads in [2, 8] {
            let parallel =
                InferredModel::fit(&arch, &records, &FitOptions::quick().with_threads(threads))
                    .expect("parallel fit");
            assert_eq!(
                sequential.params(),
                parallel.params(),
                "{:?} threads={threads}: ModelParams must be bit-identical",
                machine.id
            );
            assert_eq!(
                sequential.objective().to_bits(),
                parallel.objective().to_bits(),
                "{:?} threads={threads}: objective must be bit-identical",
                machine.id
            );
        }
    }
}

/// FNV-1a over the canonical CSV rendering of a record stream — a
/// byte-level witness, not a structural comparison.
fn records_digest(records: &[RunRecord]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in pmu::csv::to_csv(records).as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn work_stealing_collect_is_byte_identical_at_any_worker_count() {
    // The full paper campaign (103 benchmarks × 3 machines) at a reduced
    // µop budget: the work-stealing pool pre-assigns output slots, so the
    // record stream must hash identically whether one worker drains the
    // whole work-list or eight race over it.
    let machines = MachineConfig::paper_machines();
    let collect = |threads: usize, parallel: bool| {
        let collected = Workbench::new()
            .machines(machines.iter())
            .source(SimSource::paper_suites().uops(2_000).seed(SEED))
            .parallel(parallel)
            .threads(threads)
            .collect()
            .expect("campaign collects");
        let records: Vec<RunRecord> = collected.records().cloned().collect();
        (records.len(), records_digest(&records))
    };
    let (count, sequential) = collect(1, false);
    assert_eq!(count, 103 * 3, "the whole campaign, no dropped work items");
    for threads in [1, 2, 8] {
        let (n, digest) = collect(threads, true);
        assert_eq!(n, count, "threads={threads} changed the record count");
        assert_eq!(
            digest, sequential,
            "threads={threads}: pooled collect must be byte-identical to sequential"
        );
    }
}

#[test]
fn parallel_objective_fit_is_bit_identical_for_every_paper_machine() {
    // A training set big enough to cross the inner fan-out's
    // 4096-inputs-per-worker floor (the paper campaign never does, so the
    // per-term parallel reduction needs its own lockdown): one start and
    // a generous budget routes all the parallelism into the objective
    // itself, and the fitted bits must not move.
    for machine in MachineConfig::paper_machines() {
        let arch = MicroarchParams::from_machine(&machine);
        let base = records_for(&machine);
        let records: Vec<RunRecord> = base.iter().cycle().take(9_000).cloned().collect();
        let opts = |threads: usize| {
            FitOptions::quick()
                .with_extra_starts(0)
                .with_threads(threads)
        };
        let sequential = InferredModel::fit(&arch, &records, &opts(1)).expect("sequential fit");
        let parallel = InferredModel::fit(&arch, &records, &opts(8)).expect("parallel fit");
        assert_eq!(
            sequential.params(),
            parallel.params(),
            "{:?}: parallel objective changed the fitted params",
            machine.id
        );
        assert_eq!(
            sequential.objective().to_bits(),
            parallel.objective().to_bits(),
            "{:?}: parallel objective changed the objective bits",
            machine.id
        );
    }
}

#[test]
fn thread_budget_is_invisible_to_fingerprints_and_cache_keys() {
    // The scheduling knob must not split cache keys: equal fingerprints
    // regardless of the budget, so a service serves a threads=8 request
    // from a model fitted under threads=1.
    let base = FitOptions::quick();
    for threads in [0, 1, 2, 8] {
        assert_eq!(
            base.fingerprint(),
            base.clone().with_threads(threads).fingerprint(),
            "threads={threads} changed the fingerprint"
        );
    }
}

#[test]
fn snapshots_persist_across_thread_budgets() {
    // Fit under threads=1 into a state dir; a restarted service fitting
    // the same key under threads=8 must warm-load the snapshot (zero
    // regressions) and restore the exact same model — the on-disk format
    // and its keys predate the thread knob and must stay compatible.
    let dir = std::env::temp_dir().join(format!("cpistack_perf_identity_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let machine = MachineConfig::core2();
    let records = records_for(&machine);
    let key = |threads: usize| {
        ModelKey::new(
            pmu::MachineId::Core2,
            Some(Suite::Cpu2000),
            FitOptions::quick().with_threads(threads),
        )
    };

    let first = {
        let service = CpiService::start(
            ServiceConfig::new()
                .with_state_dir(&dir)
                .with_fit_threads(1),
        );
        let client = service.client();
        client.register((&machine).into()).expect("register");
        client.ingest(records.clone()).expect("ingest");
        let report = client.fit(key(1)).expect("cold fit");
        assert!(!report.cached);
        let stats = service.shutdown();
        assert_eq!(stats.fits, 1);
        report.model
    };

    let service = CpiService::start(
        ServiceConfig::new()
            .with_state_dir(&dir)
            .with_fit_threads(8),
    );
    let client = service.client();
    client.register((&machine).into()).expect("register");
    client.ingest(records).expect("ingest");
    let report = client.fit(key(8)).expect("warm fit");
    assert!(report.cached, "restart must serve from the snapshot store");
    assert_eq!(first.params(), report.model.params());
    assert_eq!(
        first.objective().to_bits(),
        report.model.objective().to_bits()
    );
    let stats = service.shutdown();
    assert_eq!(stats.fits, 0, "no regression ran on the warm restart");
    assert_eq!(stats.cache.warm_loads, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
