//! Byte-identity lockdown for the parallel multi-start fit (PR 4's
//! non-negotiable invariant): any thread budget must produce bit-identical
//! `ModelParams` and objective to the strictly-sequential path, for every
//! paper machine — and because thread budgets are invisible to cache keys
//! and records digests, snapshots persisted under one budget must
//! warm-load under any other.

use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::service::{CpiService, ModelKey, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::SimSource;
use pmu::{RunRecord, Suite};

const UOPS: u64 = 6_000;
const SEED: u64 = 2024;

fn records_for(machine: &MachineConfig) -> Vec<RunRecord> {
    SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(14)
                .collect(),
        )
        .uops(UOPS)
        .seed(SEED)
        .collect_config(machine)
}

#[test]
fn parallel_fit_is_bit_identical_for_every_paper_machine() {
    for machine in MachineConfig::paper_machines() {
        let arch = MicroarchParams::from_machine(&machine);
        let records = records_for(&machine);
        let sequential = InferredModel::fit(&arch, &records, &FitOptions::quick().with_threads(1))
            .expect("sequential fit");
        for threads in [2, 8] {
            let parallel =
                InferredModel::fit(&arch, &records, &FitOptions::quick().with_threads(threads))
                    .expect("parallel fit");
            assert_eq!(
                sequential.params(),
                parallel.params(),
                "{:?} threads={threads}: ModelParams must be bit-identical",
                machine.id
            );
            assert_eq!(
                sequential.objective().to_bits(),
                parallel.objective().to_bits(),
                "{:?} threads={threads}: objective must be bit-identical",
                machine.id
            );
        }
    }
}

#[test]
fn thread_budget_is_invisible_to_fingerprints_and_cache_keys() {
    // The scheduling knob must not split cache keys: equal fingerprints
    // regardless of the budget, so a service serves a threads=8 request
    // from a model fitted under threads=1.
    let base = FitOptions::quick();
    for threads in [0, 1, 2, 8] {
        assert_eq!(
            base.fingerprint(),
            base.clone().with_threads(threads).fingerprint(),
            "threads={threads} changed the fingerprint"
        );
    }
}

#[test]
fn snapshots_persist_across_thread_budgets() {
    // Fit under threads=1 into a state dir; a restarted service fitting
    // the same key under threads=8 must warm-load the snapshot (zero
    // regressions) and restore the exact same model — the on-disk format
    // and its keys predate the thread knob and must stay compatible.
    let dir = std::env::temp_dir().join(format!("cpistack_perf_identity_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let machine = MachineConfig::core2();
    let records = records_for(&machine);
    let key = |threads: usize| {
        ModelKey::new(
            pmu::MachineId::Core2,
            Some(Suite::Cpu2000),
            FitOptions::quick().with_threads(threads),
        )
    };

    let first = {
        let service = CpiService::start(
            ServiceConfig::new()
                .with_state_dir(&dir)
                .with_fit_threads(1),
        );
        let client = service.client();
        client.register((&machine).into()).expect("register");
        client.ingest(records.clone()).expect("ingest");
        let report = client.fit(key(1)).expect("cold fit");
        assert!(!report.cached);
        let stats = service.shutdown();
        assert_eq!(stats.fits, 1);
        report.model
    };

    let service = CpiService::start(
        ServiceConfig::new()
            .with_state_dir(&dir)
            .with_fit_threads(8),
    );
    let client = service.client();
    client.register((&machine).into()).expect("register");
    client.ingest(records).expect("ingest");
    let report = client.fit(key(8)).expect("warm fit");
    assert!(report.cached, "restart must serve from the snapshot store");
    assert_eq!(first.params(), report.model.params());
    assert_eq!(
        first.objective().to_bits(),
        report.model.objective().to_bits()
    );
    let stats = service.shutdown();
    assert_eq!(stats.fits, 0, "no regression ran on the warm restart");
    assert_eq!(stats.cache.warm_loads, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
