//! Adversarial multi-tenant isolation suite: two tenants sharing one
//! `CpiService` (and its TCP front) must be unable to observe, corrupt or
//! evict each other's state.
//!
//! * cross-tenant `fit`/`stack`/`stats` on another tenant's machine id
//!   fail **typed** (`NotRegistered` in-band) and never serve data,
//! * each tenant's served stacks are **byte-identical** to a solo
//!   `Workbench::fit` over that tenant's records alone — even while the
//!   other tenant ingests and fits the *same machine id* concurrently,
//! * a tenant flooding the model cache evicts only its own entries
//!   (asserted through per-tenant `CacheStats`),
//! * a warm restart restores each tenant only from its own state-dir
//!   subdirectory, and corruption in one tenant's snapshot never bleeds
//!   into another's.

use cpistack::model::{FitOptions, MicroarchParams};
use cpistack::service::auth::TokenRegistry;
use cpistack::service::{proto, CpiService, ModelKey, ServiceConfig, TenantId};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::{Grouping, MachineSpec};
use cpistack::{CsvSource, SimSource, Workbench};
use pmu::{MachineId, RunRecord, Suite};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const TOKEN_ALPHA: &str = "tok-alpha-0123456789abcdef";
const TOKEN_BETA: &str = "tok-beta-fedcba9876543210";

fn registry() -> Arc<TokenRegistry> {
    Arc::new(
        TokenRegistry::new()
            .with_token(TOKEN_ALPHA, "alpha")
            .expect("alpha token")
            .with_token(TOKEN_BETA, "beta")
            .expect("beta token"),
    )
}

fn alpha() -> TenantId {
    TenantId::new("alpha").unwrap()
}

fn beta() -> TenantId {
    TenantId::new("beta").unwrap()
}

/// One tenant's private counter batch: same machine, same suite slice,
/// different seed — so the two tenants' fitted models must differ.
fn records(seed: u64) -> Vec<RunRecord> {
    SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(seed)
        .collect_config(&MachineConfig::core2())
}

/// The solo ground truth for one record set: a one-shot `Workbench::fit`
/// with no service, no tenancy, no cache — formatted exactly as the
/// protocol's `stack` lines.
fn solo_stack_lines(csv: &str) -> String {
    let fitted = Workbench::new()
        .arch(MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0))
        .source(CsvSource::from_path(csv).expect("csv source"))
        .grouping(Grouping::MachineSuite)
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect")
        .fit()
        .expect("fit");
    fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("core2 group")
        .stacks()
        .into_iter()
        .map(|(benchmark, stack)| format!("stack {benchmark} {stack}\n"))
        .collect()
}

/// Opens a connection, sends `script`, returns everything the server
/// wrote until it closed the connection.
fn tcp_session(addr: std::net::SocketAddr, script: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut transcript = Vec::new();
    stream
        .read_to_end(&mut transcript)
        .expect("read transcript");
    String::from_utf8_lossy(&transcript).into_owned()
}

fn stack_block(transcript: &str) -> String {
    transcript
        .lines()
        .filter(|l| l.starts_with("stack "))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The headline adversarial scenario: two tenants, concurrent TCP
/// connections, same machine id. Cross-tenant reads fail typed before
/// any data flows, each tenant's stacks equal its solo Workbench run
/// byte-for-byte, and per-tenant stats prove nobody paid for (or hit)
/// the other's regressions.
#[test]
fn concurrent_tenants_over_tcp_are_fully_isolated() {
    let dir = std::env::temp_dir().join(format!("cpistack_tenant_tcp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv_a = dir.join("alpha.csv");
    let csv_b = dir.join("beta.csv");
    std::fs::write(&csv_a, pmu::csv::to_csv(&records(42))).expect("write alpha csv");
    std::fs::write(&csv_b, pmu::csv::to_csv(&records(99))).expect("write beta csv");
    let solo_a = solo_stack_lines(&csv_a.to_string_lossy());
    let solo_b = solo_stack_lines(&csv_b.to_string_lossy());
    assert_ne!(solo_a, solo_b, "different records, different models");

    let config = ServiceConfig::new().with_workers(3).with_cache_capacity(8);
    let service = CpiService::start(config.clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        proto::SessionSpec::with_auth(service.client(), FitOptions::quick(), registry()),
        proto::TcpServerConfig::new(proto::banner(&config, true))
            .with_poll_interval(std::time::Duration::from_millis(2)),
    )
    .expect("tcp front starts");
    let addr = server.local_addr();

    // An unauthenticated probe gets nothing — not even `shutdown`.
    let anon = tcp_session(addr, "fit core2 cpu2000\nshutdown\nquit\n");
    assert!(anon.contains("err: authenticate first"), "{anon}");
    assert!(!anon.contains("model:"), "no data without a token: {anon}");

    // Alpha sets up and fits first.
    let setup_a = tcp_session(
        addr,
        &format!(
            "hello {TOKEN_ALPHA}\nmachine core2 4 14 19 169 30\ningest {}\nquit\n",
            csv_a.display()
        ),
    );
    assert!(setup_a.contains("ingested 12 records"), "{setup_a}");

    // Beta, before registering anything, probes alpha's machine id:
    // typed rejection on every read path, zero bytes of alpha's data.
    let probe = tcp_session(
        addr,
        &format!("hello {TOKEN_BETA}\nfit core2 cpu2000\nstack core2 cpu2000\nquit\n"),
    );
    assert!(
        probe.contains("err: machine `core2` is not registered"),
        "{probe}"
    );
    assert!(!probe.contains("model:"), "{probe}");
    assert!(!probe.lines().any(|l| l.starts_with("stack ")), "{probe}");

    // Now both tenants hammer the server concurrently: beta builds its
    // own core2 from scratch (same machine id!) while alpha re-reads its
    // stacks. Every transcript must match the right solo run.
    let script_a = format!("hello {TOKEN_ALPHA}\nstack core2 cpu2000\nquit\n");
    let script_b = format!(
        "hello {TOKEN_BETA}\nmachine core2 4 14 19 169 30\ningest {}\nstack core2 cpu2000\nquit\n",
        csv_b.display()
    );
    let (a_out, b_out) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            (0..3)
                .map(|_| tcp_session(addr, &script_a))
                .collect::<Vec<_>>()
        });
        let b = scope.spawn(|| tcp_session(addr, &script_b));
        (a.join().unwrap(), b.join().unwrap())
    });
    for transcript in &a_out {
        assert_eq!(
            stack_block(transcript),
            solo_a,
            "alpha must always see its own solo-identical stacks"
        );
        assert!(!transcript.contains("err:"), "{transcript}");
    }
    assert_eq!(
        stack_block(&b_out),
        solo_b,
        "beta's stacks equal beta's solo run — not alpha's"
    );

    // Alpha's view after beta ingested into "core2": alpha's cached
    // model was never invalidated (exactly one alpha regression ran) and
    // its records count never grew.
    let again = tcp_session(
        addr,
        &format!("hello {TOKEN_ALPHA}\nfit core2 cpu2000\nstats\nquit\n"),
    );
    assert!(again.contains("cache: hit"), "{again}");
    assert!(again.contains("records: 12"), "{again}");
    assert!(again.contains(" fits 1 "), "{again}");
    assert!(again.contains("tenant alpha"), "{again}");

    // Per-tenant accounting straight from the service: one regression
    // each, no cross-tenant evictions or invalidations.
    let stats_a = service.client_for(alpha()).stats().expect("alpha stats");
    let stats_b = service.client_for(beta()).stats().expect("beta stats");
    assert_eq!(stats_a.fits, 1);
    assert_eq!(stats_b.fits, 1);
    assert_eq!(stats_a.cache.evictions, 0);
    assert_eq!(stats_b.cache.evictions, 0);
    assert_eq!(stats_a.cache.invalidations, 0, "beta never touched alpha");
    assert_eq!(stats_a.ingested_records, 12);
    assert_eq!(stats_b.ingested_records, 12);

    server.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tenant flooding the shared cache far past its quota cannot evict the
/// other tenant's models: the quota is per tenant, and so are the
/// eviction counters.
#[test]
fn cache_flooding_tenant_cannot_evict_the_other() {
    let service = CpiService::start(ServiceConfig::new().with_workers(2).with_cache_capacity(2));
    let small = |seed: u64| {
        SimSource::new()
            .suite(
                cpistack::workloads::suites::cpu2000()
                    .into_iter()
                    .take(12)
                    .collect(),
            )
            .uops(2_000)
            .seed(seed)
            .collect_config(&MachineConfig::core2())
    };
    let client_a = service.client_for(alpha());
    let client_b = service.client_for(beta());
    for client in [&client_a, &client_b] {
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
    }
    client_a.ingest(small(7)).expect("alpha ingest");
    client_b.ingest(small(8)).expect("beta ingest");

    let key = |seed| {
        ModelKey::new(
            MachineId::Core2,
            Some(Suite::Cpu2000),
            FitOptions::quick().with_seed(seed),
        )
    };
    let report_a = client_a.fit(key(0)).expect("alpha fit");
    assert!(!report_a.cached);

    // Beta floods: five distinct keys through a 2-entry quota.
    for seed in 1..=5 {
        assert!(!client_b.fit(key(seed)).expect("beta fit").cached);
    }
    let stats_b = client_b.stats().expect("beta stats");
    assert_eq!(stats_b.fits, 5);
    assert_eq!(stats_b.cache.evictions, 3, "beta churned its own quota");

    // Alpha's model survived the flood: still a cache hit, still the
    // same bits, and alpha saw zero evictions.
    let again = client_a.fit(key(0)).expect("alpha refit");
    assert!(again.cached, "the flood must not evict alpha's model");
    assert_eq!(again.model.params(), report_a.model.params());
    let stats_a = client_a.stats().expect("alpha stats");
    assert_eq!(stats_a.fits, 1, "alpha never re-fitted");
    assert_eq!(stats_a.cache.evictions, 0);
    assert_eq!(stats_a.cache.hits, 1);
    assert_eq!(stats_a.tenants, 2, "both tenants are visible in the count");

    service.shutdown();
}

/// Warm-restart isolation: each tenant persists under (and restores
/// from) its own state subdirectory — `tenant-<name>/` for named
/// tenants, the root for the implicit local tenant — and corruption in
/// one tenant's snapshot only costs *that* tenant a re-fit.
#[test]
fn warm_restart_restores_each_tenant_only_from_its_own_subdir() {
    let dir = std::env::temp_dir().join(format!("cpistack_tenant_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
    let batches: [(TenantId, Vec<RunRecord>); 3] = [
        (TenantId::local(), records(7)),
        (alpha(), records(42)),
        (beta(), records(99)),
    ];

    // One lifetime: register + ingest + fit for every tenant, returning
    // each tenant's (cached, params, fits) observation.
    let lifetime = |expect_cached: &dyn Fn(&TenantId) -> bool| {
        let service = CpiService::start(ServiceConfig::new().with_workers(2).with_state_dir(&dir));
        let mut params = Vec::new();
        for (tenant, batch) in &batches {
            let client = service.client_for(tenant.clone());
            client
                .register(MachineSpec::from(MachineConfig::core2()))
                .expect("register");
            client.ingest(batch.clone()).expect("ingest");
            let report = client.fit(key.clone()).expect("fit");
            assert_eq!(
                report.cached,
                expect_cached(tenant),
                "tenant {tenant} cache expectation"
            );
            params.push((tenant.clone(), *report.model.params()));
        }
        let per_tenant_fits: Vec<(TenantId, u64)> = batches
            .iter()
            .map(|(t, _)| {
                (
                    t.clone(),
                    service.client_for(t.clone()).stats().expect("stats").fits,
                )
            })
            .collect();
        service.shutdown();
        (params, per_tenant_fits)
    };

    let (cold_params, cold_fits) = lifetime(&|_| false);
    assert!(cold_fits.iter().all(|(_, fits)| *fits == 1));

    // On-disk layout: the local tenant owns the root, each named tenant
    // its own subdirectory — one snapshot apiece, nowhere else.
    let cpis_files = |path: &std::path::Path| -> usize {
        std::fs::read_dir(path)
            .expect("dir reads")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "cpis"))
            .count()
    };
    assert_eq!(cpis_files(&dir), 1, "local tenant persists at the root");
    assert_eq!(cpis_files(&dir.join("tenant-alpha")), 1);
    assert_eq!(cpis_files(&dir.join("tenant-beta")), 1);

    // Restart: every tenant warm-loads its own snapshot (zero fits), and
    // the restored params are bit-identical per tenant.
    let (warm_params, warm_fits) = lifetime(&|_| true);
    assert!(warm_fits.iter().all(|(_, fits)| *fits == 0));
    assert_eq!(warm_params, cold_params);

    // Corrupt beta's snapshot only: beta re-fits, everyone else still
    // warm-loads — a typed, tenant-local failure mode.
    let beta_dir = dir.join("tenant-beta");
    for entry in std::fs::read_dir(&beta_dir).expect("beta dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "cpis") {
            let mut bytes = std::fs::read(&path).expect("read");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).expect("corrupt");
        }
    }
    let beta_id = beta();
    let (refit_params, refit_fits) = lifetime(&|tenant| tenant != &beta_id);
    for (tenant, fits) in &refit_fits {
        let expected = u64::from(tenant == &beta_id);
        assert_eq!(*fits, expected, "tenant {tenant} fits after corruption");
    }
    // Deterministic fitting: the re-fit reproduces the same bits anyway.
    assert_eq!(refit_params, cold_params);
    let _ = std::fs::remove_dir_all(&dir);
}
