//! End-to-end integration: measurement → inference → stacks, across crates.

use cpistack::model::eval::{evaluate_model, summarize};
use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::sim::machine::MachineConfig;
use cpistack::sim::run::run_suite;

/// µop budget for integration tests: enough for stable rates, cheap enough
/// for debug builds.
const UOPS: u64 = 60_000;

fn subset(n: usize) -> Vec<cpistack::workloads::WorkloadProfile> {
    cpistack::workloads::suites::cpu2000()
        .into_iter()
        .take(n)
        .collect()
}

#[test]
fn measure_fit_predict_loop_closes() {
    let machine = MachineConfig::core2();
    let records = run_suite(&machine, &subset(16), UOPS, 42);
    let arch = MicroarchParams::from_machine(&machine);
    let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
    let summary = summarize(&evaluate_model(&model, &records));
    assert!(
        summary.mean < 0.20,
        "in-sample error should be well under 20%: {summary}"
    );
}

#[test]
fn stacks_sum_to_predictions_everywhere() {
    let machine = MachineConfig::core_i7();
    let records = run_suite(&machine, &subset(14), UOPS, 9);
    let arch = MicroarchParams::from_machine(&machine);
    let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
    for r in &records {
        let stack = model.cpi_stack(r);
        assert!((stack.total() - model.predict_record(r)).abs() < 1e-9);
        for (name, v) in stack.components() {
            assert!(v >= 0.0, "{}: component {name} negative ({v})", r.benchmark());
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let machine = MachineConfig::pentium4();
    let arch = MicroarchParams::from_machine(&machine);
    let run = || {
        let records = run_suite(&machine, &subset(12), UOPS, 1234);
        let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        records
            .iter()
            .map(|r| model.predict_record(r))
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn counter_records_round_trip_through_csv() {
    let machine = MachineConfig::core2();
    let records = run_suite(&machine, &subset(6), 10_000, 5);
    let text = cpistack::counters::csv::to_csv(&records);
    let back = cpistack::counters::csv::from_csv(&text).unwrap();
    assert_eq!(back, records);
    // And the reloaded records fit identically.
    let arch = MicroarchParams::from_machine(&machine);
    let records_full = run_suite(&machine, &subset(12), 10_000, 5);
    let text = cpistack::counters::csv::to_csv(&records_full);
    let reloaded = cpistack::counters::csv::from_csv(&text).unwrap();
    let a = InferredModel::fit(&arch, &records_full, &FitOptions::quick()).unwrap();
    let b = InferredModel::fit(&arch, &reloaded, &FitOptions::quick()).unwrap();
    assert_eq!(a.params(), b.params());
}

#[test]
fn ground_truth_stack_matches_measured_cpi() {
    let machine = MachineConfig::core2();
    for profile in subset(5) {
        let (record, truth) =
            cpistack::truth::measure_stack(&machine, &profile, 30_000, 777);
        assert!(
            (truth.total() - record.cpi()).abs() < 1e-9,
            "{}: {} vs {}",
            profile.name,
            truth.total(),
            record.cpi()
        );
    }
}

#[test]
fn model_tracks_machine_differences() {
    // The same workload population must produce distinguishable fitted
    // behaviour across machines: P4's CPI stack has a deeper branch
    // component (31-stage refill) than Core 2's for the same benchmark.
    let suite = subset(16);
    let p4 = MachineConfig::pentium4();
    let c2 = MachineConfig::core2();
    let p4_records = run_suite(&p4, &suite, UOPS, 3);
    let c2_records = run_suite(&c2, &suite, UOPS, 3);
    let p4_model = InferredModel::fit(
        &MicroarchParams::from_machine(&p4),
        &p4_records,
        &FitOptions::quick(),
    )
    .unwrap();
    let c2_model = InferredModel::fit(
        &MicroarchParams::from_machine(&c2),
        &c2_records,
        &FitOptions::quick(),
    )
    .unwrap();
    // Compare per-instruction branch components on a branchy benchmark.
    let pick = |records: &[cpistack::counters::RunRecord]| {
        records
            .iter()
            .position(|r| r.benchmark() == "crafty.inp")
            .expect("crafty in subset")
    };
    let i = pick(&p4_records);
    let p4_branch = p4_model.cpi_stack(&p4_records[i]).branch
        * p4_records[i].counters().uops_per_instr();
    let c2_branch = c2_model.cpi_stack(&c2_records[i]).branch
        * c2_records[i].counters().uops_per_instr();
    assert!(
        p4_branch > c2_branch,
        "P4 branch component {p4_branch} should exceed Core 2's {c2_branch}"
    );
}
