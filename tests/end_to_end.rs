//! End-to-end integration: measurement → inference → stacks, across
//! crates, driven through the unified `Workbench` pipeline.

use cpistack::model::eval::{evaluate_model, summarize};
use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::Fitted;
use cpistack::{CsvSource, RecordsSource, SimSource, Workbench};
use pmu::{MachineId, Suite};

/// µop budget for integration tests: enough for stable rates, cheap enough
/// for debug builds.
const UOPS: u64 = 60_000;

fn subset(n: usize) -> Vec<cpistack::workloads::WorkloadProfile> {
    cpistack::workloads::suites::cpu2000()
        .into_iter()
        .take(n)
        .collect()
}

/// One single-machine pipeline run: collect `n` benchmarks and fit.
fn fit_subset(machine: MachineConfig, n: usize, uops: u64, seed: u64) -> Fitted {
    Workbench::new()
        .machine(machine)
        .source(SimSource::new().suite(subset(n)).uops(uops).seed(seed))
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect stage")
        .fit()
        .expect("fit stage")
}

#[test]
fn measure_fit_predict_loop_closes() {
    let fitted = fit_subset(MachineConfig::core2(), 16, UOPS, 42);
    let group = fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("collected group");
    let summary = summarize(&evaluate_model(&group.model, &group.records));
    assert!(
        summary.mean < 0.20,
        "in-sample error should be well under 20%: {summary}"
    );
}

#[test]
fn stacks_sum_to_predictions_everywhere() {
    let fitted = fit_subset(MachineConfig::core_i7(), 14, UOPS, 9);
    let group = fitted
        .group(MachineId::CoreI7, Suite::Cpu2000)
        .expect("collected group");
    for r in &group.records {
        let stack = group.model.cpi_stack(r);
        assert!((stack.total() - group.model.predict_record(r)).abs() < 1e-9);
        for (name, v) in stack.components() {
            assert!(
                v >= 0.0,
                "{}: component {name} negative ({v})",
                r.benchmark()
            );
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let fitted = fit_subset(MachineConfig::pentium4(), 12, UOPS, 1234);
        let group = fitted
            .group(MachineId::Pentium4, Suite::Cpu2000)
            .expect("collected group");
        group
            .records
            .iter()
            .map(|r| group.model.predict_record(r))
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_collect_matches_sequential_byte_for_byte() {
    // The acceptance bar for the threaded fan-out: two machines collected
    // on parallel threads must serialize identically to the sequential
    // path under a fixed seed.
    let collect = |parallel: bool| {
        Workbench::new()
            .machine(MachineConfig::pentium4())
            .machine(MachineConfig::core2())
            .machine(MachineConfig::core_i7())
            .source(SimSource::new().suite(subset(8)).uops(10_000).seed(2024))
            .parallel(parallel)
            .collect()
            .expect("collect stage")
            .to_csv()
    };
    assert_eq!(collect(true), collect(false));
}

#[test]
fn counter_records_round_trip_through_csv() {
    let machine = MachineConfig::core2();
    let records = SimSource::new()
        .suite(subset(6))
        .uops(10_000)
        .seed(5)
        .collect_config(&machine);
    let text = cpistack::counters::csv::to_csv(&records);
    let back = cpistack::counters::csv::from_csv(&text).unwrap();
    assert_eq!(back, records);
    // And a CSV-sourced pipeline fits identically to a simulator-sourced
    // one over the same measurements.
    let sim_fitted = fit_subset(machine.clone(), 12, 10_000, 5);
    let sim_group = sim_fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("sim group");
    let csv_text = cpistack::counters::csv::to_csv(&sim_group.records);
    let csv_fitted = Workbench::new()
        .machine(machine)
        .source(CsvSource::from_text(&csv_text).expect("valid csv"))
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect stage")
        .fit()
        .expect("fit stage");
    let csv_group = csv_fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("csv group");
    assert_eq!(sim_group.model.params(), csv_group.model.params());
}

#[test]
fn records_source_replays_without_resimulating() {
    let machine = MachineConfig::core2();
    let records = SimSource::new()
        .suite(subset(12))
        .uops(10_000)
        .seed(5)
        .collect_config(&machine);
    let direct = InferredModel::fit(
        &MicroarchParams::from_machine(&machine),
        &records,
        &FitOptions::quick(),
    )
    .expect("direct fit");
    let replayed = Workbench::new()
        .machine(machine)
        .source(RecordsSource::new(records))
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect stage")
        .fit()
        .expect("fit stage");
    let group = replayed
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("replayed group");
    assert_eq!(direct.params(), group.model.params());
}

#[test]
fn ground_truth_stack_matches_measured_cpi() {
    let machine = MachineConfig::core2();
    for profile in subset(5) {
        let (record, truth) = cpistack::truth::measure_stack(&machine, &profile, 30_000, 777);
        assert!(
            (truth.total() - record.cpi()).abs() < 1e-9,
            "{}: {} vs {}",
            profile.name,
            truth.total(),
            record.cpi()
        );
    }
}

#[test]
fn model_tracks_machine_differences() {
    // The same workload population must produce distinguishable fitted
    // behaviour across machines: P4's CPI stack has a deeper branch
    // component (31-stage refill) than Core 2's for the same benchmark.
    // One multi-machine pipeline collects both on parallel threads.
    let fitted = Workbench::new()
        .machine(MachineConfig::pentium4())
        .machine(MachineConfig::core2())
        .source(SimSource::new().suite(subset(16)).uops(UOPS).seed(3))
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect stage")
        .fit()
        .expect("fit stage");
    let branch_per_instr = |id: MachineId| {
        let group = fitted.group(id, Suite::Cpu2000).expect("collected group");
        let record = group
            .records
            .iter()
            .find(|r| r.benchmark() == "crafty.inp")
            .expect("crafty in subset");
        group.model.cpi_stack(record).branch * record.counters().uops_per_instr()
    };
    let p4_branch = branch_per_instr(MachineId::Pentium4);
    let c2_branch = branch_per_instr(MachineId::Core2);
    assert!(
        p4_branch > c2_branch,
        "P4 branch component {p4_branch} should exceed Core 2's {c2_branch}"
    );
}
