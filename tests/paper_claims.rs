//! The paper's qualitative claims, verified at reduced scale: these are the
//! load-bearing shapes EXPERIMENTS.md reports at full scale.

use cpistack::counters::{Event, Suite};
use cpistack::model::baselines::{BaselineKind, EmpiricalModel};
use cpistack::model::delta::suite_delta;
use cpistack::model::eval::{evaluate_baseline, evaluate_model, summarize};
use cpistack::model::{FitOptions, InferredModel};
use cpistack::sim::machine::MachineConfig;
use cpistack::{RecordsSource, SimSource, Workbench};
use pmu::{MachineId, RunRecord};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const UOPS: u64 = 80_000;
const SEED: u64 = 12345;

/// Per-process memo of one value per (machine, suite) campaign key.
type Memo<T> = OnceLock<Mutex<HashMap<(MachineId, Suite), T>>>;

/// Several tests read the same (machine, suite) measurement campaign and
/// some also need its fitted model. Memoize both per process: a cached
/// copy is byte-identical to a fresh collection (the simulator is
/// deterministic), so this only cuts the suite's wall-clock — seven tests
/// stop re-simulating 103 benchmarks at 2 × 80k µops each.
fn suite_records(machine: &MachineConfig, suite: Suite) -> Vec<RunRecord> {
    static CACHE: Memo<Vec<RunRecord>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(records) = cache.lock().unwrap().get(&(machine.id, suite)) {
        return records.clone();
    }
    // Full suites: the paper's claims are population-level statements and
    // do not survive arbitrary sub-sampling.
    let profiles = match suite {
        Suite::Cpu2000 => cpistack::workloads::suites::cpu2000(),
        Suite::Cpu2006 => cpistack::workloads::suites::cpu2006(),
    };
    let records = SimSource::new()
        .suite(profiles)
        .uops(UOPS)
        .seed(SEED)
        .collect_config(machine);
    cache
        .lock()
        .unwrap()
        .insert((machine.id, suite), records.clone());
    records
}

fn fit(machine: &MachineConfig, records: &[RunRecord]) -> InferredModel {
    static CACHE: Memo<InferredModel> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (machine.id, records[0].suite());
    if let Some(model) = cache.lock().unwrap().get(&key) {
        return model.clone();
    }
    // Replay already-collected records through the pipeline (the records
    // are single-suite, so exactly one group comes back).
    let fitted = Workbench::new()
        .machine(machine)
        .source(RecordsSource::new(records.to_vec()))
        .fit_options(FitOptions::default())
        .collect()
        .expect("collect stage")
        .fit()
        .expect("fit stage");
    let model = fitted.groups()[0].model.clone();
    cache.lock().unwrap().insert(key, model.clone());
    model
}

#[test]
fn claim_generation_over_generation_speedup() {
    // §6: overall CPI improves P4 → Core 2 (strongly) → Core i7.
    let mean_cpi = |machine: &MachineConfig| {
        let records = suite_records(machine, Suite::Cpu2006);
        // Per macro-instruction, so cracking differences do not flatter P4.
        records
            .iter()
            .map(|r| r.cpi() * r.counters().uops_per_instr())
            .sum::<f64>()
            / records.len() as f64
    };
    let p4 = mean_cpi(&MachineConfig::pentium4());
    let c2 = mean_cpi(&MachineConfig::core2());
    let i7 = mean_cpi(&MachineConfig::core_i7());
    assert!(p4 > c2 * 1.2, "P4 {p4} vs Core 2 {c2}");
    assert!(c2 > i7, "Core 2 {c2} vs i7 {i7}");
}

#[test]
fn claim_pentium4_predicts_branches_better_than_core2() {
    // §6: "MPKI is 4.1 for Pentium 4 and 5.8 for Core 2" — the older
    // machine has the better predictor. Suite-mean comparison.
    let mpki = |machine: &MachineConfig| {
        let records = suite_records(machine, Suite::Cpu2006);
        records
            .iter()
            .map(|r| r.counters().mpki(Event::BranchMispredicts))
            .sum::<f64>()
            / records.len() as f64
    };
    let p4 = mpki(&MachineConfig::pentium4());
    let c2 = mpki(&MachineConfig::core2());
    assert!(p4 < c2, "P4 MPKI {p4} should be below Core 2's {c2}");
}

#[test]
fn claim_core2_wins_branches_despite_more_mispredictions() {
    // Fig. 6 middle row: the misprediction-count factor moves against the
    // Core 2, but resolution + pipeline depth dominate.
    let p4 = MachineConfig::pentium4();
    let c2 = MachineConfig::core2();
    let p4_records = suite_records(&p4, Suite::Cpu2006);
    let c2_records = suite_records(&c2, Suite::Cpu2006);
    let d = suite_delta(
        &fit(&p4, &p4_records),
        &p4_records,
        &fit(&c2, &c2_records),
        &c2_records,
    );
    assert!(
        d.branch.pipeline_depth < 0.0,
        "14 vs 31 stages must help: {:?}",
        d.branch
    );
    assert!(
        d.overall.branch < 0.0,
        "net branch component should improve: {:?}",
        d.overall
    );
}

#[test]
fn claim_fusion_and_width_help_core2() {
    // Fig. 6 top row: wider dispatch and µop fusion are improvement bars
    // for Core 2 over Pentium 4.
    let p4 = MachineConfig::pentium4();
    let c2 = MachineConfig::core2();
    let p4_records = suite_records(&p4, Suite::Cpu2000);
    let c2_records = suite_records(&c2, Suite::Cpu2000);
    let d = suite_delta(
        &fit(&p4, &p4_records),
        &p4_records,
        &fit(&c2, &c2_records),
        &c2_records,
    );
    assert!(d.overall.width < 0.0, "width: {:?}", d.overall);
    assert!(d.overall.fusion < 0.0, "fusion: {:?}", d.overall);
    assert!(d.overall.total() < 0.0, "overall: {:?}", d.overall);
}

#[test]
fn claim_empirical_models_overfit_gray_box_does_not() {
    // Fig. 4's conclusion, on one machine at reduced scale: under
    // cross-suite validation the gray-box model beats linear regression,
    // and the ANN's train→test degradation factor is far larger.
    let machine = MachineConfig::core_i7();
    let train = suite_records(&machine, Suite::Cpu2000);
    let test = suite_records(&machine, Suite::Cpu2006);
    let gray = fit(&machine, &train);
    let lin = EmpiricalModel::fit(BaselineKind::Linear, &train).unwrap();
    let ann = EmpiricalModel::fit(BaselineKind::NeuralNetwork, &train).unwrap();

    let gray_test = summarize(&evaluate_model(&gray, &test)).mean;
    let lin_test = summarize(&evaluate_baseline(&lin, &test)).mean;
    let ann_train = summarize(&evaluate_baseline(&ann, &train)).mean;
    let ann_test = summarize(&evaluate_baseline(&ann, &test)).mean;

    assert!(
        gray_test < lin_test,
        "gray-box {gray_test:.3} should beat linear {lin_test:.3} cross-suite"
    );
    let gray_train = summarize(&evaluate_model(&gray, &train)).mean;
    let gray_degradation = gray_test / gray_train.max(1e-6);
    let ann_degradation = ann_test / ann_train.max(1e-6);
    assert!(
        ann_degradation > gray_degradation * 2.0,
        "ANN should degrade far more: ANN {ann_degradation:.1}x vs gray {gray_degradation:.1}x"
    );
}

#[test]
fn claim_cpu2006_is_more_memory_intensive() {
    // §6 rests on CPU2006 stressing the memory hierarchy harder than
    // CPU2000 (on the same machine).
    let machine = MachineConfig::core2();
    let r2000 = suite_records(&machine, Suite::Cpu2000);
    let r2006 = suite_records(&machine, Suite::Cpu2006);
    let llc_rate = |records: &[RunRecord]| {
        records
            .iter()
            .map(|r| r.counters().per_uop(Event::LlcDataMisses))
            .sum::<f64>()
            / records.len() as f64
    };
    assert!(
        llc_rate(&r2006) > llc_rate(&r2000) * 1.3,
        "2006 {:.2e} vs 2000 {:.2e}",
        llc_rate(&r2006),
        llc_rate(&r2000)
    );
}

#[test]
fn claim_i7_memory_hierarchy_helps_cpu2006() {
    // Fig. 6: Core i7's gains on CPU2006 are memory-led (bigger LLC +
    // prefetch + TLB).
    let c2 = MachineConfig::core2();
    let i7 = MachineConfig::core_i7();
    let c2_records = suite_records(&c2, Suite::Cpu2006);
    let i7_records = suite_records(&i7, Suite::Cpu2006);
    let d = suite_delta(
        &fit(&c2, &c2_records),
        &c2_records,
        &fit(&i7, &i7_records),
        &i7_records,
    );
    assert!(
        d.overall.memory < 0.0,
        "i7's memory component should improve: {:?}",
        d.overall
    );
    let total = d.overall.total();
    assert!(
        d.overall.memory <= total * 0.4,
        "memory should be a leading contributor: memory {} of total {}",
        d.overall.memory,
        total
    );
}
