//! The multi-node serving tier, end to end: consistent-hash routing
//! through the router front, snapshot replication to ring successors,
//! and — the acceptance criterion — kill-a-node warm failover: killing
//! a backend mid-session leaves its tenants servable by survivors from
//! replicated snapshots with **zero re-fits** and stacks byte-identical
//! to a solo `Workbench::fit()` run. Also: router transcripts are
//! byte-identical to a single node's (text lines AND binstack frames)
//! for two tenants concurrently, draining takes a node out of rotation
//! without touching it, and cluster failures surface as typed errors.

use cpistack::loadgen::{self, LoadgenConfig, RequestTemplate};
use cpistack::model::{FitOptions, MicroarchParams};
use cpistack::service::auth::TokenRegistry;
use cpistack::service::cluster::{ClusterError, ClusterHarness, RouterConfig};
use cpistack::service::{proto, CpiService, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::Grouping;
use cpistack::{CsvSource, SimSource, Workbench};
use pmu::{MachineId, Suite};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Core 2 constants as the protocol's `machine` command states them.
const ARCH: [f64; 5] = [4.0, 14.0, 19.0, 169.0, 30.0];

const TOKEN_ALPHA: &str = "tok-alpha-0123456789abcdef";
const TOKEN_BETA: &str = "tok-beta-fedcba9876543210";

/// A fresh scratch dir per test (name disambiguates parallel tests in
/// one process).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cpistack_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Writes the fixed-seed counter CSV every party fits from.
fn counters_csv(dir: &std::path::Path) -> String {
    let records = SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(42)
        .collect_config(&MachineConfig::core2());
    let path = dir.join("campaign.csv");
    std::fs::write(&path, pmu::csv::to_csv(&records)).expect("write csv");
    path.to_string_lossy().into_owned()
}

/// The solo ground truth: the same CSV through `Workbench::fit()`,
/// stacks formatted exactly as the protocol's `stack` lines.
fn sequential_stack_lines(csv: &str) -> String {
    let fitted = Workbench::new()
        .arch(MicroarchParams::new(
            ARCH[0], ARCH[1], ARCH[2], ARCH[3], ARCH[4],
        ))
        .source(CsvSource::from_path(csv).expect("csv source"))
        .grouping(Grouping::MachineSuite)
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect")
        .fit()
        .expect("fit");
    let group = fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("core2 group");
    group
        .stacks()
        .into_iter()
        .map(|(benchmark, stack)| format!("stack {benchmark} {stack}\n"))
        .collect()
}

/// Opens a connection, sends `script`, and returns everything the server
/// wrote until it closed the connection.
fn tcp_session(addr: std::net::SocketAddr, script: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut transcript = Vec::new();
    stream
        .read_to_end(&mut transcript)
        .expect("read transcript");
    transcript
}

/// Just the `stack ` lines of a transcript, newline-joined.
fn stack_lines(transcript: &[u8]) -> String {
    String::from_utf8_lossy(transcript)
        .lines()
        .filter(|l| l.starts_with("stack "))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// A fast-polling router config for tests (a short idle timeout bounds
/// any accidental hang at seconds, not minutes).
fn test_router(banner: impl Into<String>) -> RouterConfig {
    RouterConfig::new(banner)
        .with_poll_interval(Duration::from_millis(2))
        .with_idle_timeout(Some(Duration::from_secs(10)))
}

/// The acceptance criterion: 3 nodes, replication on; a session fits
/// through the router; the owner node is killed for real; a new session
/// re-queries the dead node's key and the ring successor serves it from
/// the replicated snapshot — `warm 1`, `fits 0`, stacks byte-identical
/// to the solo Workbench run.
#[test]
fn killing_a_node_serves_its_tenants_warm_with_zero_refits() {
    let dir = scratch("failover");
    let csv = counters_csv(&dir);
    let expected = sequential_stack_lines(&csv);

    let mut harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(3)
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");
    let router = harness.router_addr();

    // Fit through the router; the response must already be the solo
    // stacks, byte for byte.
    let fit_session = tcp_session(
        router,
        &format!("machine core2 4 14 19 169 30\ningest {csv}\nfit core2 cpu2000\nstack core2 cpu2000\nquit\n"),
    );
    let text = String::from_utf8_lossy(&fit_session);
    assert!(text.contains("ingested 12 records"), "{text}");
    assert!(text.contains("cache: miss"), "{text}");
    assert!(!text.contains("err:"), "{text}");
    assert_eq!(stack_lines(&fit_session), expected);

    // Kill the node that owns (local, core2) — its port now refuses
    // connections, exactly like a crashed process.
    let owner = harness
        .owner_index("local", "core2")
        .expect("core2 has an owner");
    harness.kill(owner);

    // A fresh session re-queries the dead node's key through the router:
    // the ring successor must serve it from the replicated snapshot.
    let after = tcp_session(router, "stack core2 cpu2000\nstats\nquit\n");
    let after_text = String::from_utf8_lossy(&after);
    assert!(
        !after_text.contains("err:"),
        "failover must be invisible: {after_text}"
    );
    assert_eq!(
        stack_lines(&after),
        expected,
        "failover stacks must equal the solo Workbench run byte-for-byte"
    );
    // Zero re-fits: the survivor warm-loaded the replicated snapshot.
    assert!(after_text.contains(" fits 0 "), "{after_text}");
    assert!(after_text.contains(" warm 1 "), "{after_text}");

    // The dead node is typed Down once probed.
    let dead = harness.node_name(owner).to_owned();
    match harness.router().probe(&dead) {
        Err(ClusterError::NodeDown { node, .. }) => assert_eq!(node, dead),
        other => panic!("expected NodeDown for `{dead}`, got {other:?}"),
    }

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failover under fire: while an open-loop loadgen campaign hammers a
/// survivor-owned tenant through the router, the node owning another
/// tenant's key is killed mid-campaign. The bystander traffic must not
/// notice — zero drops, zero in-band errors, every response still
/// byte-identical to the solo baseline — and the dead tenant's key must
/// still fail over warm (`fits 0`, `warm 1`, solo-identical stacks).
#[test]
fn killing_a_node_under_concurrent_loadgen_leaves_survivors_clean() {
    let dir = scratch("failover_load");
    let csv = counters_csv(&dir);
    let expected = sequential_stack_lines(&csv);
    let mut expected_wire = expected.clone().into_bytes();
    expected_wire.extend_from_slice(b"ok\n");

    let registry = Arc::new(
        TokenRegistry::new()
            .with_token(TOKEN_ALPHA, "alpha")
            .expect("alpha token")
            .with_token(TOKEN_BETA, "beta")
            .expect("beta token"),
    );
    let mut harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(3)
        .with_registry(Arc::clone(&registry))
        .with_router(test_router("cluster").with_max_connections(96))
        .start()
        .expect("cluster boots");
    let router = harness.router_addr();

    // The two tenants hash to different ring positions for the same
    // machine — killing beta's owner makes alpha's campaign a pure
    // bystander.
    let beta_owner = harness
        .owner_index("beta", "core2")
        .expect("beta core2 owner");
    let alpha_owner = harness
        .owner_index("alpha", "core2")
        .expect("alpha core2 owner");
    assert_ne!(
        beta_owner, alpha_owner,
        "ring placement must separate the tenants for this scenario"
    );

    // Warm both tenants through the router (fit → replicated snapshot).
    for token in [TOKEN_ALPHA, TOKEN_BETA] {
        let setup = tcp_session(
            router,
            &format!(
                "hello {token}\nmachine core2 4 14 19 169 30\ningest {csv}\nfit core2 cpu2000\nquit\n"
            ),
        );
        assert!(
            !String::from_utf8_lossy(&setup).contains("err:"),
            "{}",
            String::from_utf8_lossy(&setup)
        );
    }

    // Alpha's campaign runs while the kill lands ~a third of the way in.
    let config = LoadgenConfig::new(router, "core2", "cpu2000")
        .with_connections(32)
        .with_rate(5.0)
        .with_duration(Duration::from_millis(1500))
        .with_hello(TOKEN_ALPHA)
        .with_requests(vec![
            RequestTemplate::expecting("stack core2 cpu2000", expected_wire.clone()),
            RequestTemplate::new("binstack core2 cpu2000"),
        ]);
    let report = std::thread::scope(|scope| {
        let campaign = scope.spawn(|| loadgen::run(&config).expect("campaign runs"));
        std::thread::sleep(Duration::from_millis(500));
        harness.kill(beta_owner);
        campaign.join().unwrap()
    });
    assert_eq!(
        report.dropped,
        0,
        "a bystander tenant must not lose connections to another tenant's node dying\n{}",
        report.summary()
    );
    assert_eq!(
        report.errors,
        0,
        "bystander responses must stay byte-identical through the kill\n{}",
        report.summary()
    );
    assert_eq!(report.sustained, 32, "{}", report.summary());
    assert_eq!(report.completed, report.sent, "{}", report.summary());

    // And the dead tenant's key still fails over warm, as in the quiet
    // scenario: the successor serves the replicated snapshot, no re-fit.
    let after = tcp_session(
        router,
        &format!("hello {TOKEN_BETA}\nstack core2 cpu2000\nstats\nquit\n"),
    );
    let after_text = String::from_utf8_lossy(&after);
    assert!(
        !after_text.contains("err:"),
        "failover must be invisible: {after_text}"
    );
    assert_eq!(stack_lines(&after), expected);
    assert!(after_text.contains(" fits 0 "), "{after_text}");
    assert!(after_text.contains(" warm 1 "), "{after_text}");

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a fit-bearing session through the router is byte-identical
/// (text lines AND the binstack frame) to the same session against a
/// single node — for two tenants running concurrently.
#[test]
fn router_transcripts_match_single_node_byte_for_byte_for_two_tenants() {
    let dir = scratch("proxy");
    let csv = counters_csv(&dir);
    let registry = Arc::new(
        TokenRegistry::new()
            .with_token(TOKEN_ALPHA, "alpha")
            .expect("alpha token")
            .with_token(TOKEN_BETA, "beta")
            .expect("beta token"),
    );
    let script_for = |token: &str| {
        format!(
            "hello {token}\n\
             machine core2 4 14 19 169 30\n\
             ingest {csv}\n\
             fit core2 cpu2000\n\
             fit core2 cpu2000\n\
             stack core2 cpu2000\n\
             predict core2 cpu2000\n\
             binstack core2 cpu2000\n\
             stats\n\
             quit\n"
        )
    };

    // Ground truth: each tenant against its own fresh single node, same
    // banner the cluster announces.
    let solo_for = |token: &str| {
        let config = ServiceConfig::new().with_workers(2).with_cache_capacity(8);
        let service = CpiService::start(config);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = proto::serve_tcp(
            listener,
            proto::SessionSpec::with_auth(
                service.client(),
                FitOptions::quick(),
                Arc::clone(&registry),
            ),
            proto::TcpServerConfig::new("cluster").with_poll_interval(Duration::from_millis(2)),
        )
        .expect("solo front");
        let transcript = tcp_session(server.local_addr(), &script_for(token));
        server.shutdown();
        service.shutdown();
        transcript
    };
    let solo_alpha = solo_for(TOKEN_ALPHA);
    let solo_beta = solo_for(TOKEN_BETA);

    let harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(3)
        .with_registry(Arc::clone(&registry))
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");
    let router = harness.router_addr();
    let (via_alpha, via_beta) = std::thread::scope(|scope| {
        let a = scope.spawn(|| tcp_session(router, &script_for(TOKEN_ALPHA)));
        let b = scope.spawn(|| tcp_session(router, &script_for(TOKEN_BETA)));
        (a.join().unwrap(), b.join().unwrap())
    });

    for (tenant, via, solo) in [
        ("alpha", &via_alpha, &solo_alpha),
        ("beta", &via_beta, &solo_beta),
    ] {
        assert!(
            via == solo,
            "tenant {tenant} diverged through the router.\n--- solo ---\n{}\n--- router ---\n{}",
            String::from_utf8_lossy(solo),
            String::from_utf8_lossy(via),
        );
        let text = String::from_utf8_lossy(via);
        assert!(text.contains(&format!("hello {tenant}")), "{text}");
        assert!(text.contains("cache: hit"), "{text}");
        assert!(text.contains("frame stacks "), "{text}");
        assert!(text.contains(&format!("tenant {tenant}")), "{text}");
    }

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes a campaign CSV covering all three paper machines (same seed)
/// so two-machine commands have real records on every side.
fn three_machine_csv(dir: &std::path::Path) -> String {
    let suite: Vec<_> = cpistack::workloads::suites::cpu2000()
        .into_iter()
        .take(12)
        .collect();
    let mut records = Vec::new();
    for config in [
        MachineConfig::pentium4(),
        MachineConfig::core2(),
        MachineConfig::core_i7(),
    ] {
        records.extend(
            SimSource::new()
                .suite(suite.clone())
                .uops(3_000)
                .seed(42)
                .collect_config(&config),
        );
    }
    let path = dir.join("trio.csv");
    std::fs::write(&path, pmu::csv::to_csv(&records)).expect("write csv");
    path.to_string_lossy().into_owned()
}

/// The single-node ground truth for a whole scripted session: the same
/// banner and fit options the cluster nodes run with, so a router
/// transcript can be compared byte-for-byte.
fn solo_transcript(script: &str) -> Vec<u8> {
    let service = CpiService::start(ServiceConfig::new().with_workers(2).with_cache_capacity(16));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        proto::SessionSpec::open(service.client(), FitOptions::quick()),
        proto::TcpServerConfig::new("cluster").with_poll_interval(Duration::from_millis(2)),
    )
    .expect("solo front");
    let transcript = tcp_session(server.local_addr(), script);
    server.shutdown();
    service.shutdown();
    transcript
}

/// Satellite regression: `delta <old> <new> <suite>` routes by a single
/// `(tenant, machine)` key, so when the ring places the two machines on
/// *different* owners the serving node used to know nothing about the
/// new side and the command failed where a single node succeeds. The
/// router must ship the missing machine's records over first; with that
/// in place the whole session transcript — registration, ingest, and
/// the delta stacks — is byte-identical to the same script against a
/// single node. Replication is off so nothing reaches the old side's
/// owner by accident: this is exactly the split that used to break.
#[test]
fn two_owner_delta_through_the_router_matches_a_single_node() {
    let dir = scratch("two_owner_delta");
    let csv = three_machine_csv(&dir);

    let harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(3)
        .with_router(test_router("cluster").with_replicas(0))
        .start()
        .expect("cluster boots");
    // The scenario needs an old/new pair the ring places on different
    // owners; with three presets over three nodes at least one of the
    // ordered pairs must split.
    let machines = ["pentium4", "core2", "corei7"];
    let owner = |m: &str| harness.owner_index("local", m).expect("owner");
    let (old, new) = machines
        .iter()
        .flat_map(|a| machines.iter().map(move |b| (*a, *b)))
        .find(|(a, b)| a != b && owner(a) != owner(b))
        .expect("ring placement must split at least one pair");

    let script = format!(
        "machine pentium4 3 20 24 206 35\n\
         machine core2 4 14 19 169 30\n\
         machine corei7 4 16 14 120 25\n\
         ingest {csv}\n\
         delta {old} {new} cpu2000\n\
         quit\n"
    );
    let solo = solo_transcript(&script);
    let solo_text = String::from_utf8_lossy(&solo);
    assert!(
        solo_text.contains("Δ") && !solo_text.contains("err:"),
        "single-node baseline must serve the delta: {solo_text}"
    );

    let via = tcp_session(harness.router_addr(), &script);
    assert!(
        via == solo,
        "a two-owner delta diverged through the router.\n--- solo ---\n{}\n--- router ---\n{}",
        solo_text,
        String::from_utf8_lossy(&via),
    );

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole: a design-space sweep through the router fans each variant
/// to its ring owner and merges the slices. Every `variant` line and
/// the Pareto front must be byte-identical to the same sweep against a
/// single node; only the summary's simulated-work tally may differ
/// (each involved node fits the shared base once). A warm re-sweep
/// through the router then serves entirely from the nodes' caches:
/// zero simulated configs, zero runs, every variant a cache hit.
#[test]
fn partitioned_sweep_through_the_router_matches_a_single_node_and_resweeps_warm() {
    let dir = scratch("router_sweep");
    let script = "sweep core2 cpu2000 rob=64,96 mshr=8,16 uops=2000 seed=7 limit=12\nquit\n";
    let solo = solo_transcript(script);
    let solo_text = String::from_utf8_lossy(&solo).into_owned();
    assert_eq!(
        solo_text.matches("\nvariant ").count(),
        4,
        "grid must expand to 4 variants: {solo_text}"
    );
    assert!(!solo_text.contains("err:"), "{solo_text}");

    let harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(3)
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");
    let router = harness.router_addr();

    // The scenario needs a genuinely partitioned grid: at least two
    // distinct owners across the expanded variant names.
    let owners: std::collections::HashSet<usize> =
        ["core2", "core2+rob64", "core2+rob64+mshr8", "core2+mshr8"]
            .iter()
            .map(|name| harness.owner_index("local", name).expect("owner"))
            .collect();
    assert!(
        owners.len() >= 2,
        "ring placement must spread the variants for this scenario"
    );

    let via = tcp_session(router, script);
    let via_text = String::from_utf8_lossy(&via);
    // Byte-identical modulo the summary tally.
    let strip_summary = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.starts_with("sweep:"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    assert_eq!(
        strip_summary(&via_text),
        strip_summary(&solo_text),
        "partitioned sweep diverged from the single-node run"
    );

    // Warm re-sweep: every slice serves from cache, nothing simulates.
    let warm = tcp_session(router, script);
    let warm_text = String::from_utf8_lossy(&warm);
    assert!(
        warm_text.contains("simulated configs 0 runs 0"),
        "a re-sweep must refit nothing: {warm_text}"
    );
    assert!(
        !warm_text.contains("cache miss"),
        "a re-sweep must be all cache hits: {warm_text}"
    );
    assert_eq!(strip_summary(&warm_text), strip_summary(&solo_text));

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A node dying between sweeps costs nothing but the re-fit: the ring
/// reroutes the dead owner's slice to a survivor, which re-simulates
/// deterministically — the re-sweep still serves the full grid with the
/// same variant values and Pareto front, no in-band errors.
#[test]
fn sweep_reroutes_slices_to_survivors_after_a_node_death() {
    let dir = scratch("sweep_failover");
    let script = "sweep core2 cpu2000 rob=48,96 uops=2000 seed=11 limit=12\nquit\n";
    let harness_dir = dir.join("state");
    let mut harness = ClusterHarness::builder(harness_dir)
        .with_nodes(3)
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");
    let router = harness.router_addr();

    let cold = tcp_session(router, script);
    let cold_text = String::from_utf8_lossy(&cold).into_owned();
    assert!(!cold_text.contains("err:"), "{cold_text}");
    assert_eq!(cold_text.matches("\nvariant ").count(), 2, "{cold_text}");
    let pareto = cold_text
        .lines()
        .find(|l| l.starts_with("pareto "))
        .expect("pareto line")
        .to_owned();

    // Kill the variant's owner; the base's owner may be the same node.
    let owner = harness
        .owner_index("local", "core2+rob48")
        .expect("variant owner");
    harness.kill(owner);

    let after = tcp_session(router, script);
    let after_text = String::from_utf8_lossy(&after);
    assert!(
        !after_text.contains("err:"),
        "a dead owner must reroute, not fail the sweep: {after_text}"
    );
    assert_eq!(after_text.matches("\nvariant ").count(), 2, "{after_text}");
    assert_eq!(
        after_text
            .lines()
            .find(|l| l.starts_with("pareto "))
            .expect("pareto line"),
        pareto,
        "rerouted slices must reproduce the same front"
    );

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Draining removes a node from rotation without touching it: its keys
/// reroute, new work lands on survivors, and the drained node itself
/// keeps serving direct connections.
#[test]
fn draining_reroutes_keys_while_the_node_keeps_running() {
    let dir = scratch("drain");
    let harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(2)
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");

    let owner = harness
        .owner_index("local", "core2")
        .expect("core2 has an owner");
    harness.drain(owner).expect("drain by index");
    let rerouted = harness
        .owner_index("local", "core2")
        .expect("a live owner remains");
    assert_ne!(rerouted, owner, "draining must move the key");

    // Through the router, the key's commands now land on the survivor.
    let via = tcp_session(
        harness.router_addr(),
        "machine core2 4 14 19 169 30\nstats\nquit\n",
    );
    let text = String::from_utf8_lossy(&via);
    assert!(text.contains("registered core2"), "{text}");
    assert!(!text.contains("err:"), "{text}");

    // The drained node still answers direct connections (it was never
    // stopped) — draining is routing state, not node state.
    let direct = tcp_session(harness.node_addr(owner), "stats\nquit\n");
    assert!(String::from_utf8_lossy(&direct).contains("stats:"));

    // Unknown member names are a typed error.
    assert!(matches!(
        harness.router().drain("node-99"),
        Err(ClusterError::UnknownNode { .. })
    ));

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With every backend dead the router stays up and reports the failure
/// in-band, per command, instead of hanging up.
#[test]
fn a_cluster_with_no_live_backends_reports_in_band_errors() {
    let dir = scratch("nobackends");
    let mut harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(1)
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");
    harness.kill(0);

    let via = tcp_session(harness.router_addr(), "stats\nquit\n");
    let text = String::from_utf8_lossy(&via);
    assert!(
        text.contains("err: node `node-0` is down") || text.contains("err: no live backend nodes"),
        "dead backends must surface as typed in-band errors: {text}"
    );

    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An in-band `shutdown` through the router stops the router *and*
/// every backend — the whole tier goes down as one unit.
#[test]
fn shutdown_through_the_router_stops_the_whole_tier() {
    let dir = scratch("shutdown");
    let harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(2)
        .with_router(test_router("cluster"))
        .start()
        .expect("cluster boots");
    let router = harness.router_addr();
    let node0 = harness.node_addr(0);
    let node1 = harness.node_addr(1);

    let farewell = tcp_session(router, "shutdown\n");
    assert!(String::from_utf8_lossy(&farewell).ends_with("ok\n"));
    harness.wait();

    for addr in [router, node0, node1] {
        assert!(
            TcpStream::connect(addr).is_err(),
            "{addr} still accepting after tier shutdown"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
