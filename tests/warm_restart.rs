//! Warm-restart behaviour of the serving layer: a `CpiService` restarted
//! against the same `--state-dir` must serve its first fit request from
//! disk — zero regressions, byte-identical stacks — and a new counter
//! batch after the restart must force exactly one re-fit (the records
//! digest changed; stale parameters are never served).

use cpistack::model::FitOptions;
use cpistack::service::{CpiService, ModelKey, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::MachineSpec;
use cpistack::SimSource;
use pmu::{MachineId, RunRecord, Suite};
use std::path::Path;

fn records(seed: u64) -> Vec<RunRecord> {
    SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(seed)
        .collect_config(&MachineConfig::core2())
}

fn key() -> ModelKey {
    ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick())
}

/// One service lifetime: register, ingest the given batches, request
/// stacks once, and return the formatted stack lines plus the final
/// stats.
fn one_lifetime(
    state_dir: &Path,
    batches: &[Vec<RunRecord>],
) -> (bool, String, cpistack::ServiceStats) {
    let service = CpiService::start(
        ServiceConfig::new()
            .with_workers(2)
            .with_state_dir(state_dir),
    );
    let client = service.client();
    client
        .register(MachineSpec::from(MachineConfig::core2()))
        .expect("register");
    for batch in batches {
        client.ingest(batch.clone()).expect("ingest");
    }
    let (report, stacks) = client.stacks(key()).expect("stacks");
    let text: String = stacks
        .iter()
        .map(|(benchmark, stack)| format!("stack {benchmark} {stack}\n"))
        .collect();
    let stats = service.shutdown();
    (report.cached, text, stats)
}

#[test]
fn restart_serves_first_fit_from_disk_then_refits_once_on_new_data() {
    let dir = std::env::temp_dir().join(format!("cpistack_warm_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let batch = records(7);

    // Cold start: the fit runs and its snapshot lands on disk.
    let (cached, cold_stacks, stats) = one_lifetime(&dir, std::slice::from_ref(&batch));
    assert!(!cached, "nothing on disk yet: first request fits");
    assert_eq!(stats.fits, 1);
    assert_eq!(stats.cache.warm_loads, 0);

    // Drop the service, restart against the same state dir, replay the
    // same ingest: the first request must be served from disk — zero
    // fits, all hits — and the stacks must be byte-identical.
    let (cached, warm_stacks, stats) = one_lifetime(&dir, std::slice::from_ref(&batch));
    assert!(cached, "the restored snapshot serves as a cache hit");
    assert_eq!(stats.fits, 0, "a warm restart re-fits nothing");
    assert_eq!(stats.cache.hits, 1, "all hits");
    assert_eq!(stats.cache.misses, 0);
    assert_eq!(stats.cache.warm_loads, 1);
    assert_eq!(
        warm_stacks, cold_stacks,
        "stacks survive the restart bit-for-bit"
    );

    // Restart again, but ingest one *new* batch on top: the generation
    // bump (and changed records digest) must force exactly one re-fit —
    // the old snapshot must not be served against the grown record set.
    let second = records(99);
    let (cached, grown_stacks, stats) = one_lifetime(&dir, &[batch.clone(), second.clone()]);
    assert!(!cached, "new data means a fresh fit");
    assert_eq!(stats.fits, 1, "exactly one re-fit");
    assert_eq!(stats.cache.warm_loads, 0);
    assert_ne!(
        grown_stacks, cold_stacks,
        "the model did change with the data"
    );

    // And the re-fit persisted too: replaying both batches warm-loads it.
    let (cached, replay_stacks, stats) = one_lifetime(&dir, &[batch, second]);
    assert!(cached);
    assert_eq!(stats.fits, 0);
    assert_eq!(replay_stacks, grown_stacks);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_records_never_hit_a_stale_snapshot() {
    let dir = std::env::temp_dir().join(format!("cpistack_warm_digest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, _, stats) = one_lifetime(&dir, &[records(7)]);
    assert_eq!(stats.fits, 1);
    // Same machine, same suite, same options — but different counter
    // values. The digest must miss and a fresh fit must run.
    let (cached, _, stats) = one_lifetime(&dir, &[records(8)]);
    assert!(!cached);
    assert_eq!(stats.fits, 1, "changed records fall through to a fresh fit");
    assert_eq!(stats.cache.warm_loads, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_fall_through_to_a_fresh_fit() {
    let dir = std::env::temp_dir().join(format!("cpistack_warm_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let batch = records(7);
    let (_, cold_stacks, _) = one_lifetime(&dir, std::slice::from_ref(&batch));
    // Flip one byte in every snapshot file on disk.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("state dir exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "cpis") {
            let mut bytes = std::fs::read(&path).expect("read snapshot");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).expect("write corrupt snapshot");
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 1, "the lifetime persisted exactly one snapshot");
    // The corrupt file is detected, treated as a miss, and the fit
    // re-runs — output identical to the cold run (fitting is
    // deterministic), no panic, no garbage parameters.
    let (cached, refit_stacks, stats) = one_lifetime(&dir, &[batch]);
    assert!(!cached);
    assert_eq!(stats.fits, 1);
    assert_eq!(stats.cache.warm_loads, 0);
    assert_eq!(refit_stacks, cold_stacks);
    let _ = std::fs::remove_dir_all(&dir);
}
