//! The design-space sweep service, pinned from the outside:
//!
//! * **Grid expansion** is a pure function, so its invariants are
//!   property-tested: permutation-independence of the axis values, no
//!   duplicate variants, and the empty-axis / singleton-grid edge cases.
//! * **Simulation economy**: N grid variants over one suite simulate
//!   each workload's trace exactly once per *distinct* configuration —
//!   never once per variant-request — and a warm re-sweep simulates and
//!   refits nothing (asserted through the service stats, not inferred
//!   from wall-clock).
//! * **Byte-identity**: every variant's served stacks equal a standalone
//!   [`Workbench`] fit of that configuration bit for bit, and every
//!   variant's delta stacks equal the sequential `delta` path's answer.

use std::collections::HashSet;

use cpistack::model::FitOptions;
use cpistack::service::sweep::{self, SweepGrid, SweepSpec};
use cpistack::service::{CpiService, ModelKey, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::{SimSource, Workbench};
use pmu::{MachineId, Suite};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Grid expansion properties
// ---------------------------------------------------------------------------

/// Builds a grid from four axis value lists.
fn grid_of(rob: &[usize], mshr: &[usize], dw: &[u32], pf: &[u64]) -> SweepGrid {
    SweepGrid::new()
        .rob(rob.iter().copied())
        .mshrs(mshr.iter().copied())
        .dispatch(dw.iter().copied())
        .prefetch(pf.iter().copied())
}

/// The number of points a raw axis value list contributes: its distinct
/// values, or 1 when empty (the stock fallback).
fn axis_points<T: Ord + Copy + std::hash::Hash>(values: &[T]) -> usize {
    if values.is_empty() {
        return 1;
    }
    values.iter().collect::<HashSet<_>>().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Expansion is independent of the order (and multiplicity) of the
    /// axis values: reversing every axis and appending a duplicate of
    /// each value yields the identical variant list, and that list is
    /// duplicate-free with exactly one variant per distinct grid point.
    #[test]
    fn expansion_is_permutation_independent_and_duplicate_free(
        rob in prop::collection::vec(8usize..512, 0..4),
        mshr in prop::collection::vec(1usize..64, 0..4),
        dw in (1u32..9, 1u32..9, 0usize..3).prop_map(|(a, b, n)| {
            [a, b].into_iter().take(n).collect::<Vec<u32>>()
        }),
        pf in prop::collection::vec(0u64..32, 0..3),
    ) {
        let forward = sweep::expand(MachineId::Core2, &grid_of(&rob, &mshr, &dw, &pf))
            .expect("valid grid points");

        // Reversed axes, every value repeated: same expansion, byte for byte.
        let double = |v: &[usize]| -> Vec<usize> {
            v.iter().rev().chain(v.iter()).copied().collect()
        };
        let shuffled = grid_of(
            &double(&rob),
            &double(&mshr),
            &dw.iter().rev().chain(dw.iter()).copied().collect::<Vec<_>>(),
            &pf.iter().rev().chain(pf.iter()).copied().collect::<Vec<_>>(),
        );
        let backward = sweep::expand(MachineId::Core2, &shuffled).expect("valid grid points");
        prop_assert_eq!(&forward, &backward);

        // One variant per distinct point, no duplicate ids.
        let expected =
            axis_points(&rob) * axis_points(&mshr) * axis_points(&dw) * axis_points(&pf);
        prop_assert_eq!(forward.len(), expected);
        let ids: HashSet<&str> = forward.iter().map(|v| v.id.name()).collect();
        prop_assert!(ids.len() == forward.len(), "duplicate variant ids");
    }

    /// A singleton grid expands to exactly one variant, whose config is
    /// the base preset with just the named axes overridden — and when
    /// every singleton sits at the stock value, the variant *is* the
    /// base machine.
    #[test]
    fn singleton_grids_expand_to_one_decoded_variant(
        rob in 8usize..512,
        mshr in 1usize..64,
    ) {
        let variants = sweep::expand(MachineId::Core2, &grid_of(&[rob], &[mshr], &[], &[]))
            .expect("valid grid point");
        prop_assert_eq!(variants.len(), 1);
        let stock = MachineConfig::core2();
        let v = &variants[0];
        prop_assert_eq!(v.config.rob_size, rob);
        prop_assert_eq!(v.config.mshrs, mshr);
        prop_assert_eq!(v.config.dispatch_width, stock.dispatch_width);
        prop_assert_eq!(v.config.prefetch_depth, stock.prefetch_depth);
        if rob == stock.rob_size && mshr == stock.mshrs {
            prop_assert_eq!(v.id, MachineId::Core2);
        } else {
            prop_assert!(v.id.is_variant());
            // The name round-trips back to the same decoded config.
            let decoded = MachineConfig::preset(v.id);
            prop_assert_eq!(decoded.rob_size, rob);
            prop_assert_eq!(decoded.mshrs, mshr);
        }
    }
}

#[test]
fn an_empty_grid_is_just_the_base_machine() {
    let variants = sweep::expand(MachineId::Core2, &SweepGrid::new()).expect("empty grid expands");
    assert_eq!(variants.len(), 1);
    assert_eq!(variants[0].id, MachineId::Core2);
    assert_eq!(variants[0].config, MachineConfig::core2());
}

// ---------------------------------------------------------------------------
// Service-level invariants
// ---------------------------------------------------------------------------

/// A small two-axis spec over the Core 2: four named variants (the stock
/// point collapses into `core2` itself), quick fits, a 12-benchmark
/// CPU2000 slice.
fn small_spec() -> SweepSpec {
    let grid = SweepGrid::new().rob([64, 96]).mshrs([8, 16]);
    let mut spec = SweepSpec::new(MachineId::Core2, grid, Suite::Cpu2000);
    spec.options = FitOptions::quick();
    spec.uops = 2_000;
    spec.seed = 9;
    spec.limit = Some(12);
    spec
}

/// Satellite invariant: N grid variants over one suite simulate each
/// workload's trace once per *distinct* config — and a warm re-sweep of
/// the identical spec performs zero simulations and zero refits, pinned
/// by the service's own `fits` counter rather than by timing.
#[test]
fn sweep_simulates_once_per_distinct_config_and_resweeps_without_refits() {
    let service = CpiService::start(ServiceConfig::new().with_workers(2));
    let client = service.client();
    let spec = small_spec();
    let workloads = spec.limit.expect("limited suite");

    let cold = client.sweep(spec.clone()).expect("cold sweep");
    assert_eq!(cold.results.len(), 4, "2×2 grid, stock point collapsed");
    assert_eq!(
        cold.simulated_configs, 4,
        "one simulation per distinct config"
    );
    assert_eq!(
        cold.simulated_runs,
        cold.simulated_configs * workloads,
        "each workload's trace runs once per distinct config"
    );
    let fits_after_cold = client.stats().expect("stats").fits;
    assert!(fits_after_cold >= 4, "cold sweep fitted the grid");

    // Warm re-sweep: same spec, nothing simulated, nothing refitted,
    // every variant a cache hit.
    let warm = client.sweep(spec).expect("warm re-sweep");
    assert_eq!(warm.simulated_configs, 0);
    assert_eq!(warm.simulated_runs, 0);
    assert!(
        warm.results.iter().all(|r| r.cached),
        "warm sweep must hit cache"
    );
    assert_eq!(
        client.stats().expect("stats").fits,
        fits_after_cold,
        "warm re-sweep performed a refit"
    );

    // Growing the grid re-simulates only the configurations the first
    // sweep has not seen: two new mshr=32 points, nothing else.
    let mut wider = small_spec();
    wider.grid = SweepGrid::new().rob([64, 96]).mshrs([8, 16, 32]);
    let grown = client.sweep(wider).expect("grown sweep");
    assert_eq!(grown.results.len(), 6);
    assert_eq!(grown.simulated_configs, 2, "only the new points simulate");
    assert_eq!(grown.simulated_runs, 2 * workloads);

    service.shutdown();
}

/// Acceptance invariant: each variant served by the sweep carries the
/// same fitted stacks — bit for bit — as a standalone [`Workbench`] run
/// of that exact configuration over the same simulated workload slice.
#[test]
fn variant_stacks_are_byte_identical_to_a_standalone_workbench_fit() {
    let service = CpiService::start(ServiceConfig::new().with_workers(2));
    let client = service.client();
    let spec = small_spec();
    let summary = client.sweep(spec.clone()).expect("sweep");

    let profiles = || {
        let all = cpistack::workloads::suites::cpu2000();
        all.into_iter().take(spec.limit.expect("limited suite"))
    };
    for result in &summary.results {
        // The service's cached per-benchmark stacks for this variant…
        let key = ModelKey::new(result.id, Some(spec.suite), spec.options.clone());
        let (report, served) = client.stacks(key).expect("served stacks");
        assert!(report.cached, "sweep left {} warm", result.id.name());

        // …versus a from-scratch Workbench pipeline over the same
        // simulated slice with the same options.
        let config = MachineConfig::preset(result.id);
        let fitted = Workbench::new()
            .machine(&config)
            .source(
                SimSource::new()
                    .suite(profiles().collect())
                    .uops(spec.uops)
                    .seed(spec.seed),
            )
            .fit_options(spec.options.clone())
            .collect()
            .expect("standalone collect")
            .fit()
            .expect("standalone fit");
        let model = fitted
            .model(result.id, spec.suite)
            .expect("standalone model");
        let records = SimSource::new()
            .suite(profiles().collect())
            .uops(spec.uops)
            .seed(spec.seed)
            .collect_config(&config);

        assert_eq!(served.len(), records.len());
        let mut cpi = 0.0;
        for ((name, stack), record) in served.iter().zip(&records) {
            let standalone = model.cpi_stack(record);
            assert_eq!(name, record.benchmark());
            assert_eq!(
                format!("{stack:?}"),
                format!("{standalone:?}"),
                "stack for {} / {name} diverged from the standalone fit",
                result.id.name()
            );
            cpi += standalone.total();
        }
        let cpi = cpi / records.len().max(1) as f64;
        assert_eq!(
            result.cpi.to_bits(),
            cpi.to_bits(),
            "{}: sweep CPI diverged from the standalone fit",
            result.id.name()
        );
    }
    service.shutdown();
}

/// The sweep's per-variant delta stacks are byte-identical to what the
/// sequential `delta old new suite` path answers for the same pair.
#[test]
fn sweep_deltas_match_the_sequential_delta_path() {
    let service = CpiService::start(ServiceConfig::new().with_workers(2));
    let client = service.client();
    let spec = small_spec();
    let summary = client.sweep(spec.clone()).expect("sweep");

    for result in summary.results.iter().filter(|r| r.id != summary.base) {
        let sequential = client
            .delta(summary.base, result.id, spec.suite, spec.options.clone())
            .expect("sequential delta");
        assert_eq!(
            format!("{:?}", result.delta),
            format!("{sequential:?}"),
            "delta for {} diverged from the sequential path",
            result.id.name()
        );
    }
    service.shutdown();
}
