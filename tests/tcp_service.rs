//! The TCP front under concurrency: N threads × M connections against
//! one served campaign must produce byte-identical stack output to a
//! sequential in-process `Workbench::fit()` run under a fixed seed —
//! the PR 2 in-process concurrency guarantee, now over a socket. Also
//! covers the binary stack framing, the idle timeout (including one
//! firing mid-partial-line), the deterministic `--max-conns` rejection
//! on both connection engines, and graceful shutdown.

use cpistack::model::{FitOptions, MicroarchParams};
use cpistack::service::poller::ServeBackend;
use cpistack::service::proto::{
    self, decode_stack_frame, read_frame, TcpServerConfig, FRAME_KIND_STACKS,
};
use cpistack::service::{CpiService, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::Grouping;
use cpistack::{CsvSource, SimSource, Workbench};
use pmu::{MachineId, Suite};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Core 2 constants as the protocol's `machine` command states them.
const ARCH: [f64; 5] = [4.0, 14.0, 19.0, 169.0, 30.0];

/// Writes the fixed-seed counter CSV every party fits from.
fn counters_csv(dir: &std::path::Path) -> String {
    std::fs::create_dir_all(dir).expect("temp dir");
    let records = SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(42)
        .collect_config(&MachineConfig::core2());
    let path = dir.join("campaign.csv");
    std::fs::write(&path, pmu::csv::to_csv(&records)).expect("write csv");
    path.to_string_lossy().into_owned()
}

/// The sequential ground truth: the same CSV through `Workbench::fit()`,
/// stacks formatted exactly as the protocol's `stack` lines.
fn sequential_stack_lines(csv: &str) -> String {
    let fitted = Workbench::new()
        .arch(MicroarchParams::new(
            ARCH[0], ARCH[1], ARCH[2], ARCH[3], ARCH[4],
        ))
        .source(CsvSource::from_path(csv).expect("csv source"))
        .grouping(Grouping::MachineSuite)
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect")
        .fit()
        .expect("fit");
    let group = fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("core2 group");
    group
        .stacks()
        .into_iter()
        .map(|(benchmark, stack)| format!("stack {benchmark} {stack}\n"))
        .collect()
}

/// Opens a connection, sends `script`, and returns everything the server
/// wrote until it closed the connection.
fn tcp_session(addr: std::net::SocketAddr, script: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut transcript = Vec::new();
    stream
        .read_to_end(&mut transcript)
        .expect("read transcript");
    transcript
}

#[test]
fn concurrent_tcp_clients_match_sequential_workbench_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("cpistack_tcp_test_{}", std::process::id()));
    let csv = counters_csv(&dir);
    let expected = sequential_stack_lines(&csv);

    let config = ServiceConfig::new().with_workers(3).with_cache_capacity(8);
    let service = CpiService::start(config.clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        proto::SessionSpec::open(service.client(), FitOptions::quick()),
        TcpServerConfig::new(proto::banner(&config, true))
            .with_poll_interval(Duration::from_millis(2)),
    )
    .expect("tcp front starts");
    let addr = server.local_addr();

    // One setup connection registers the machine and ingests the CSV.
    let setup = tcp_session(
        addr,
        &format!("machine core2 4 14 19 169 30\ningest {csv}\nquit\n"),
    );
    let setup = String::from_utf8(setup).expect("utf8");
    assert!(setup.contains("ingested 12 records"), "{setup}");
    assert!(!setup.contains("err:"), "{setup}");

    // N threads × M connections each, all requesting the same stacks.
    const THREADS: usize = 4;
    const CONNECTIONS_PER_THREAD: usize = 3;
    let transcripts: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(move || {
                    (0..CONNECTIONS_PER_THREAD)
                        .map(|_| tcp_session(addr, "stack core2 cpu2000\nquit\n"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(transcripts.len(), THREADS * CONNECTIONS_PER_THREAD);

    // Every transcript is byte-identical: banner, expected stack block
    // (byte-for-byte the sequential Workbench output), ok, ok.
    let reference = &transcripts[0];
    let reference_text = String::from_utf8(reference.clone()).expect("utf8");
    let stack_block: String = reference_text
        .lines()
        .filter(|l| l.starts_with("stack "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        stack_block, expected,
        "socket-served stacks must equal the sequential Workbench run"
    );
    for transcript in &transcripts {
        assert_eq!(
            transcript, reference,
            "every concurrent client sees identical bytes"
        );
    }

    // The model fitted exactly once for all 12 connections.
    let stats = service.client().stats().expect("stats");
    assert_eq!(
        stats.fits, 1,
        "one regression served all concurrent clients"
    );

    server.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binary_framing_round_trips_over_the_socket() {
    let dir = std::env::temp_dir().join(format!("cpistack_tcp_bin_{}", std::process::id()));
    let csv = counters_csv(&dir);
    let expected = sequential_stack_lines(&csv);

    let config = ServiceConfig::new().with_workers(2);
    let service = CpiService::start(config.clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        proto::SessionSpec::open(service.client(), FitOptions::quick()),
        TcpServerConfig::new(proto::banner(&config, true))
            .with_poll_interval(Duration::from_millis(2)),
    )
    .expect("tcp front starts");

    let transcript = tcp_session(
        server.local_addr(),
        &format!("machine core2 4 14 19 169 30\ningest {csv}\nbinstack core2 cpu2000\nquit\n"),
    );
    // Walk the line-oriented part up to the frame announcement.
    let marker = b"frame stacks ";
    let pos = transcript
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("frame announcement");
    let line_end = pos + transcript[pos..].iter().position(|b| *b == b'\n').unwrap();
    let announced: usize = std::str::from_utf8(&transcript[pos + marker.len()..line_end])
        .unwrap()
        .parse()
        .expect("announced frame length");
    let frame = &transcript[line_end + 1..line_end + 1 + announced];
    let (kind, payload) = read_frame(&mut &frame[..]).expect("frame validates");
    assert_eq!(kind, FRAME_KIND_STACKS);
    let stacks = decode_stack_frame(&payload).expect("payload decodes");
    let as_lines: String = stacks
        .iter()
        .map(|(benchmark, stack)| format!("stack {benchmark} {stack}\n"))
        .collect();
    assert_eq!(
        as_lines, expected,
        "binary-framed stacks must carry the same values as the line protocol"
    );
    // The terminator still arrives after the frame.
    assert!(transcript[line_end + 1 + announced..].starts_with(b"ok\n"));

    server.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The connection cap is deterministic on both engines: with
/// `max_connections = 2` and two admitted sessions held open, the third
/// connection reads exactly `err: busy\n` — no banner — and an
/// immediate EOF. Closing an admitted session frees its slot.
#[test]
fn over_cap_connections_read_busy_and_are_closed_immediately() {
    for backend in [ServeBackend::Events, ServeBackend::Threads] {
        let config = ServiceConfig::new().with_workers(1);
        let service = CpiService::start(config.clone());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = proto::serve_tcp(
            listener,
            proto::SessionSpec::open(service.client(), FitOptions::quick()),
            TcpServerConfig::new(proto::banner(&config, true))
                .with_poll_interval(Duration::from_millis(2))
                .with_max_connections(2)
                .with_backend(backend),
        )
        .expect("tcp front starts");
        let addr = server.local_addr();
        let banner = format!("{}\n", proto::banner(&config, true));

        // Admit two sessions and hold them open; reading each banner
        // proves the server has registered the connection, so the cap
        // is fully occupied before the third connect.
        let mut held: Vec<TcpStream> = (0..2)
            .map(|i| {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut buf = vec![0u8; banner.len()];
                stream.read_exact(&mut buf).expect("banner");
                assert_eq!(buf, banner.as_bytes(), "connection {i} ({backend:?})");
                stream
            })
            .collect();

        // The third connection is rejected in-band and closed at once.
        let mut over = TcpStream::connect(addr).expect("connect over cap");
        let mut rejection = Vec::new();
        over.read_to_end(&mut rejection).expect("read rejection");
        assert_eq!(
            rejection, b"err: busy\n",
            "over-cap rejection must be exactly `err: busy` then EOF ({backend:?})"
        );

        // Quitting an admitted session frees its slot for a newcomer.
        let mut first = held.remove(0);
        first.write_all(b"quit\n").expect("quit");
        let mut drained = Vec::new();
        first.read_to_end(&mut drained).expect("drain to EOF");
        let mut fresh = TcpStream::connect(addr).expect("connect after slot freed");
        let mut buf = vec![0u8; banner.len()];
        fresh.read_exact(&mut buf).expect("banner after slot freed");
        assert_eq!(buf, banner.as_bytes(), "{backend:?}");

        server.shutdown();
        service.shutdown();
        drop(held);
    }
}

/// The idle timer fires even when the client has sent part of a line:
/// a dangling `sta` (no newline) must never execute, and the server
/// still hangs up in-band after the deadline on both engines.
#[test]
fn idle_timeout_fires_mid_partial_line_without_executing_it() {
    for backend in [ServeBackend::Events, ServeBackend::Threads] {
        let config = ServiceConfig::new().with_workers(1);
        let service = CpiService::start(config.clone());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = proto::serve_tcp(
            listener,
            proto::SessionSpec::open(service.client(), FitOptions::quick()),
            TcpServerConfig::new(proto::banner(&config, true))
                .with_idle_timeout(Some(Duration::from_millis(250)))
                .with_poll_interval(Duration::from_millis(2))
                .with_backend(backend),
        )
        .expect("tcp front starts");

        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // Half a `stats` command, never completed with a newline.
        stream.write_all(b"sta").expect("partial line");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("read until close");
        assert!(
            text.ends_with("err: idle timeout — closing connection\n"),
            "partial line must still hit the idle deadline ({backend:?}): {text}"
        );
        // The fragment never executed: no response line besides the
        // banner and the timeout notice.
        assert_eq!(
            text.lines().count(),
            2,
            "banner + timeout only ({backend:?}): {text}"
        );
        assert!(!text.contains("ok"), "{text}");

        server.shutdown();
        service.shutdown();
    }
}

#[test]
fn idle_connections_are_closed_and_shutdown_is_graceful() {
    let config = ServiceConfig::new().with_workers(1);
    let service = CpiService::start(config.clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        proto::SessionSpec::open(service.client(), FitOptions::quick()),
        TcpServerConfig::new(proto::banner(&config, true))
            .with_idle_timeout(Some(Duration::from_millis(250)))
            .with_poll_interval(Duration::from_millis(2)),
    )
    .expect("tcp front starts");
    let addr = server.local_addr();

    // Say nothing: the server must hang up on us with an in-band reason.
    let mut idle = TcpStream::connect(addr).expect("connect");
    let mut text = String::new();
    idle.read_to_string(&mut text).expect("read until close");
    assert!(text.contains("err: idle timeout"), "{text}");

    // The in-band `shutdown` command stops the whole server...
    let farewell = tcp_session(addr, "shutdown\n");
    assert!(String::from_utf8_lossy(&farewell).ends_with("ok\n"));
    server.wait();
    // ...after which new connections are refused (the listener is gone).
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting"
    );
    service.shutdown();
}
