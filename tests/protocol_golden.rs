//! Golden-file protocol tests: scripted serve sessions (requests plus
//! expected responses) checked in under `tests/golden/`, replayed against
//! **all four** protocol fronts — stdio, TCP on the readiness event
//! loop, TCP on the legacy thread-per-connection engine, and the cluster
//! router (a one-node cluster, so every counter-bearing line stays
//! pinned) — from one shared harness. Any drift in the command surface,
//! an error message, the stats line or the banner fails these tests
//! loudly, with a diff against the file. The router front doubles as the
//! tentpole proof that the cluster tier is protocol-transparent, and the
//! two TCP engines pin the readiness loop to the threaded engine's exact
//! wire bytes: clients cannot tell any front from any other.
//!
//! Golden-file format: `#` lines are comments, `> ` lines are sent to the
//! session in order, every other line is expected output. The expected
//! transcript must match byte-for-byte on each front (and therefore the
//! two fronts must match each other).
//!
//! Sessions run open (implicit local tenant) by default; goldens whose
//! name starts with `auth` run with a fixed two-tenant token registry —
//! the stdio front loads it from a token *file* via `--auth` while the
//! TCP front embeds the same registry directly, so the handshake bytes
//! are pinned across both wiring paths.
//!
//! Fit-bearing sessions cannot be pinned in a static file (the fitted
//! parameters would couple the protocol tests to the regression
//! internals), so the second half of this suite asserts the
//! acceptance-level property directly: the *same scripted session*,
//! including fits, streams and a binary frame, produces byte-identical
//! transcripts over stdio and over a socket.

use cpistack::cli::{self, ServeArgs};
use cpistack::model::FitOptions;
use cpistack::service::auth::TokenRegistry;
use cpistack::service::cluster::{ClusterHarness, RouterConfig};
use cpistack::service::poller::ServeBackend;
use cpistack::service::{proto, CpiService, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::SimSource;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fixed tokens so the `hello` handshake bytes are stable in the golden
/// files. Never reuse these outside tests.
const TOKEN_ALPHA: &str = "tok-alpha-0123456789abcdef";
const TOKEN_BETA: &str = "tok-beta-fedcba9876543210";

/// The two-tenant registry every `auth*` golden runs under.
fn registry() -> Arc<TokenRegistry> {
    Arc::new(
        TokenRegistry::new()
            .with_token(TOKEN_ALPHA, "alpha")
            .expect("alpha token")
            .with_token(TOKEN_BETA, "beta")
            .expect("beta token"),
    )
}

/// Writes the same registry as a token file (the stdio front exercises
/// the `--auth <file>` loading path; the TCP harness embeds the registry
/// directly — both must produce identical transcripts). Written exactly
/// once per process: the auth tests run in parallel in one binary, and a
/// rewriting truncate could race another test's `TokenRegistry::load`
/// into seeing an empty file.
fn token_file() -> std::path::PathBuf {
    static PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cpistack_golden_auth_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("tokens.txt");
        std::fs::write(
            &path,
            format!("# golden test tokens\n{TOKEN_ALPHA} alpha\n{TOKEN_BETA} beta\n"),
        )
        .expect("write token file");
        path
    })
    .clone()
}

/// One parsed golden session.
struct Golden {
    script: String,
    expected: Vec<u8>,
}

fn parse_golden(text: &str) -> Golden {
    let mut script = String::new();
    let mut expected = String::new();
    for line in text.lines() {
        if let Some(command) = line.strip_prefix("> ") {
            script.push_str(command);
            script.push('\n');
        } else if line == ">" {
            script.push('\n');
        } else if !line.starts_with('#') {
            expected.push_str(line);
            expected.push('\n');
        }
    }
    Golden {
        script,
        expected: expected.into_bytes(),
    }
}

/// The fixed session shape every golden file (and the fit session below)
/// runs under, so banners and stats lines are deterministic.
fn serve_args(auth: bool) -> ServeArgs {
    ServeArgs {
        workers: Some(2),
        cache: Some(4),
        quick: true,
        auth: auth.then(|| token_file().to_string_lossy().into_owned()),
        ..ServeArgs::default()
    }
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new().with_workers(2).with_cache_capacity(4)
}

/// Runs a script through the stdio front and returns the raw transcript.
fn stdio_transcript(script: &str, auth: bool) -> Vec<u8> {
    let mut out = Vec::new();
    cli::serve(
        &serve_args(auth),
        std::io::Cursor::new(script.to_owned()),
        &mut out,
    )
    .expect("stdio session runs");
    out
}

/// Runs the same script through a TCP front (fresh service, ephemeral
/// port) on the chosen connection engine and returns the raw transcript
/// the socket carried.
fn tcp_transcript(script: &str, auth: bool, backend: ServeBackend) -> Vec<u8> {
    let config = service_config();
    let service = CpiService::start(config.clone());
    let spec = if auth {
        proto::SessionSpec::with_auth(service.client(), FitOptions::quick(), registry())
    } else {
        proto::SessionSpec::open(service.client(), FitOptions::quick())
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        spec,
        proto::TcpServerConfig::new(proto::banner(&config, true))
            .with_poll_interval(Duration::from_millis(2))
            .with_backend(backend),
    )
    .expect("tcp front starts");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut transcript = Vec::new();
    stream
        .read_to_end(&mut transcript)
        .expect("read transcript");
    server.shutdown();
    service.shutdown();
    transcript
}

/// Runs the same script through the cluster router fronting a one-node
/// cluster (one node, so requests/fits counters accumulate exactly as
/// on a single server — the protocol-transparency the tentpole
/// promises) and returns the raw transcript.
fn router_transcript(script: &str, auth: bool) -> Vec<u8> {
    static SCRATCH: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cpistack_golden_router_{}_{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::SeqCst)
    ));
    let mut builder = ClusterHarness::builder(&dir)
        .with_nodes(1)
        .with_workers(2)
        .with_cache(4)
        .with_options(FitOptions::quick())
        .with_router(
            RouterConfig::new(proto::banner(&service_config(), true))
                .with_poll_interval(Duration::from_millis(2)),
        );
    if auth {
        builder = builder.with_registry(registry());
    }
    let harness = builder.start().expect("cluster boots");
    let mut stream = std::net::TcpStream::connect(harness.router_addr()).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut transcript = Vec::new();
    stream
        .read_to_end(&mut transcript)
        .expect("read transcript");
    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    transcript
}

fn diff_for(label: &str, actual: &[u8], expected: &[u8]) -> String {
    format!(
        "{label} transcript diverged from the golden file.\n--- expected ---\n{}\n--- actual ---\n{}",
        String::from_utf8_lossy(expected),
        String::from_utf8_lossy(actual),
    )
}

fn check_golden(name: &str) {
    let auth = name.starts_with("auth");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    let golden = parse_golden(&std::fs::read_to_string(&path).expect("golden file reads"));
    let stdio = stdio_transcript(&golden.script, auth);
    assert!(
        stdio == golden.expected,
        "{}",
        diff_for(&format!("stdio:{name}"), &stdio, &golden.expected)
    );
    let tcp_events = tcp_transcript(&golden.script, auth, ServeBackend::Events);
    assert!(
        tcp_events == golden.expected,
        "{}",
        diff_for(&format!("tcp-events:{name}"), &tcp_events, &golden.expected)
    );
    let tcp_threads = tcp_transcript(&golden.script, auth, ServeBackend::Threads);
    assert!(
        tcp_threads == golden.expected,
        "{}",
        diff_for(
            &format!("tcp-threads:{name}"),
            &tcp_threads,
            &golden.expected
        )
    );
    let router = router_transcript(&golden.script, auth);
    assert!(
        router == golden.expected,
        "{}",
        diff_for(&format!("router:{name}"), &router, &golden.expected)
    );
}

#[test]
fn golden_basics_session_matches_on_both_fronts() {
    check_golden("basics.session");
}

#[test]
fn golden_errors_session_matches_on_both_fronts() {
    check_golden("errors.session");
}

#[test]
fn golden_auth_session_matches_on_both_fronts() {
    check_golden("auth.session");
}

/// The acceptance criterion, end to end: a scripted session that
/// registers, ingests, fits (twice — the repeat must hit the cache),
/// streams stacks and predictions, ships a binary frame and reads stats
/// gives **byte-identical** responses over stdio and over TCP.
#[test]
fn fit_session_is_byte_identical_across_fronts() {
    let dir = std::env::temp_dir().join(format!("cpistack_golden_fit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let records = SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(42)
        .collect_config(&MachineConfig::core2());
    let csv = dir.join("golden.csv");
    std::fs::write(&csv, pmu::csv::to_csv(&records)).expect("write csv");
    let script = format!(
        "machine core2 4 14 19 169 30\n\
         ingest {path}\n\
         fit core2 cpu2000\n\
         fit core2 cpu2000\n\
         stack core2 cpu2000\n\
         predict core2 cpu2000\n\
         binstack core2 cpu2000\n\
         stats\n\
         quit\n",
        path = csv.display()
    );
    let stdio = stdio_transcript(&script, false);
    let tcp = tcp_transcript(&script, false, ServeBackend::Events);
    assert!(
        stdio == tcp,
        "fronts diverged.\n--- stdio ---\n{}\n--- tcp ---\n{}",
        String::from_utf8_lossy(&stdio),
        String::from_utf8_lossy(&tcp),
    );
    let threaded = tcp_transcript(&script, false, ServeBackend::Threads);
    assert!(
        threaded == tcp,
        "tcp engines diverged.\n--- events ---\n{}\n--- threads ---\n{}",
        String::from_utf8_lossy(&tcp),
        String::from_utf8_lossy(&threaded),
    );
    let router = router_transcript(&script, false);
    assert!(
        router == tcp,
        "router front diverged.\n--- tcp ---\n{}\n--- router ---\n{}",
        String::from_utf8_lossy(&tcp),
        String::from_utf8_lossy(&router),
    );
    let text = String::from_utf8_lossy(&stdio);
    assert!(text.contains("cache: miss"), "{text}");
    assert!(text.contains("cache: hit"), "{text}");
    assert!(text.contains("stack "), "{text}");
    assert!(text.contains("frame stacks "), "{text}");
    assert!(text.contains("fits 1 "), "one regression total: {text}");
    assert!(
        text.contains("tenant local"),
        "open sessions run as the local tenant: {text}"
    );
    assert!(!text.contains("err:"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same acceptance property on an auth-gated server: an
/// authenticated tenant's fit-bearing session is byte-identical across
/// fronts (including the handshake preamble), and its stats line names
/// the tenant.
#[test]
fn authenticated_fit_session_is_byte_identical_across_fronts() {
    let dir = std::env::temp_dir().join(format!("cpistack_golden_afit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let records = SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(42)
        .collect_config(&MachineConfig::core2());
    let csv = dir.join("golden.csv");
    std::fs::write(&csv, pmu::csv::to_csv(&records)).expect("write csv");
    let script = format!(
        "hello {TOKEN_ALPHA}\n\
         machine core2 4 14 19 169 30\n\
         ingest {path}\n\
         fit core2 cpu2000\n\
         fit core2 cpu2000\n\
         stats\n\
         quit\n",
        path = csv.display()
    );
    let stdio = stdio_transcript(&script, true);
    let tcp = tcp_transcript(&script, true, ServeBackend::Events);
    assert!(
        stdio == tcp,
        "fronts diverged.\n--- stdio ---\n{}\n--- tcp ---\n{}",
        String::from_utf8_lossy(&stdio),
        String::from_utf8_lossy(&tcp),
    );
    let threaded = tcp_transcript(&script, true, ServeBackend::Threads);
    assert!(
        threaded == tcp,
        "tcp engines diverged.\n--- events ---\n{}\n--- threads ---\n{}",
        String::from_utf8_lossy(&tcp),
        String::from_utf8_lossy(&threaded),
    );
    let router = router_transcript(&script, true);
    assert!(
        router == tcp,
        "router front diverged.\n--- tcp ---\n{}\n--- router ---\n{}",
        String::from_utf8_lossy(&tcp),
        String::from_utf8_lossy(&router),
    );
    let text = String::from_utf8_lossy(&stdio);
    assert!(text.contains("hello alpha"), "{text}");
    assert!(text.contains("cache: hit"), "{text}");
    assert!(text.contains("fits 1 "), "{text}");
    assert!(text.contains("tenant alpha"), "{text}");
    assert!(!text.contains("err:"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
