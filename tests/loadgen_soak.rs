//! The connection-scaling soak: 256 concurrent connections (two tenants
//! × 128) of mixed text `stack` / binary `binstack` traffic against one
//! readiness-loop TCP front at 2 ms timer granularity, driven by the
//! open-loop [`loadgen`](cpistack::loadgen) harness.
//!
//! The suite's bar is strict on purpose: **zero** dropped connections,
//! **zero** in-band protocol errors, and every response — all ~3000 of
//! them, across both tenants — byte-identical to a sequential in-process
//! `Workbench::fit()` baseline under the same fixed seed. Concurrency
//! and the event loop may reorder *scheduling*; they must never change
//! *bytes*.

use cpistack::loadgen::{self, LoadgenConfig, RequestTemplate};
use cpistack::model::{FitOptions, MicroarchParams};
use cpistack::service::auth::TokenRegistry;
use cpistack::service::proto::{self, encode_stack_frame, TcpServerConfig};
use cpistack::service::{CpiService, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::Grouping;
use cpistack::{CsvSource, SimSource, Workbench};
use pmu::{MachineId, Suite};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TOKEN_ALPHA: &str = "soak-alpha-0123456789abcdef";
const TOKEN_BETA: &str = "soak-beta-0123456789abcdef";

/// Connections per tenant; the front carries both tenants at once.
const CONNS_PER_TENANT: usize = 128;

/// Writes the fixed-seed counter CSV every party fits from.
fn counters_csv(dir: &std::path::Path) -> String {
    std::fs::create_dir_all(dir).expect("temp dir");
    let records = SimSource::new()
        .suite(
            cpistack::workloads::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(42)
        .collect_config(&MachineConfig::core2());
    let path = dir.join("campaign.csv");
    std::fs::write(&path, pmu::csv::to_csv(&records)).expect("write csv");
    path.to_string_lossy().into_owned()
}

/// The sequential ground truth, rendered as complete wire responses: the
/// same CSV through `Workbench::fit()`, formatted exactly as the
/// protocol answers `stack` (text lines + `ok`) and `binstack` (frame
/// announcement + frame bytes + `ok`).
fn expected_responses(csv: &str) -> (Vec<u8>, Vec<u8>) {
    let fitted = Workbench::new()
        .arch(MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0))
        .source(CsvSource::from_path(csv).expect("csv source"))
        .grouping(Grouping::MachineSuite)
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect")
        .fit()
        .expect("fit");
    let group = fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("core2 group");
    let stacks: Vec<_> = group
        .stacks()
        .into_iter()
        .map(|(benchmark, stack)| (benchmark.to_string(), stack))
        .collect();
    let mut text = Vec::new();
    for (benchmark, stack) in &stacks {
        text.extend_from_slice(format!("stack {benchmark} {stack}\n").as_bytes());
    }
    text.extend_from_slice(b"ok\n");
    let frame = encode_stack_frame(&stacks);
    let mut bin = format!("frame stacks {}\n", frame.len()).into_bytes();
    bin.extend_from_slice(&frame);
    bin.extend_from_slice(b"ok\n");
    (text, bin)
}

/// Opens a connection, sends `script`, and returns the full transcript.
fn tcp_session(addr: std::net::SocketAddr, script: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    let mut transcript = String::new();
    stream
        .read_to_string(&mut transcript)
        .expect("read transcript");
    transcript
}

#[test]
fn soak_256_connections_of_mixed_traffic_stay_byte_identical() {
    let dir = std::env::temp_dir().join(format!("cpistack_soak_{}", std::process::id()));
    let csv = counters_csv(&dir);
    let (expected_text, expected_bin) = expected_responses(&csv);

    let registry = Arc::new(
        TokenRegistry::new()
            .with_token(TOKEN_ALPHA, "alpha")
            .expect("alpha token")
            .with_token(TOKEN_BETA, "beta")
            .expect("beta token"),
    );
    let config = ServiceConfig::new().with_workers(4).with_cache_capacity(8);
    let service = CpiService::start(config.clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = proto::serve_tcp(
        listener,
        proto::SessionSpec::with_auth(service.client(), FitOptions::quick(), registry),
        TcpServerConfig::new(proto::banner(&config, true))
            .with_poll_interval(Duration::from_millis(2))
            .with_idle_timeout(Some(Duration::from_secs(30)))
            .with_max_connections(CONNS_PER_TENANT * 2 + 16),
    )
    .expect("tcp front starts");
    let addr = server.local_addr();

    // One setup session per tenant: authenticate, register the machine,
    // ingest the campaign, and fit — so the soak traffic below is all
    // warm cache hits and the measured path is the serving loop itself.
    for token in [TOKEN_ALPHA, TOKEN_BETA] {
        let setup = tcp_session(
            addr,
            &format!(
                "hello {token}\nmachine core2 4 14 19 169 30\ningest {csv}\nfit core2 cpu2000\nquit\n"
            ),
        );
        assert!(setup.contains("ingested 12 records"), "{setup}");
        assert!(!setup.contains("err:"), "{setup}");
    }

    // Both tenants soak concurrently: 128 connections each, alternating
    // text and binary requests, every response pinned to the sequential
    // baseline's bytes.
    let campaign = |token: &str| {
        LoadgenConfig::new(addr, "core2", "cpu2000")
            .with_connections(CONNS_PER_TENANT)
            .with_rate(4.0)
            .with_duration(Duration::from_millis(1500))
            .with_hello(token)
            .with_requests(vec![
                RequestTemplate::expecting("stack core2 cpu2000", expected_text.clone()),
                RequestTemplate::expecting("binstack core2 cpu2000", expected_bin.clone()),
            ])
    };
    let (alpha, beta) = std::thread::scope(|scope| {
        let alpha = scope.spawn(|| loadgen::run(&campaign(TOKEN_ALPHA)).expect("alpha campaign"));
        let beta = scope.spawn(|| loadgen::run(&campaign(TOKEN_BETA)).expect("beta campaign"));
        (alpha.join().unwrap(), beta.join().unwrap())
    });

    for (tenant, report) in [("alpha", &alpha), ("beta", &beta)] {
        assert_eq!(
            report.dropped,
            0,
            "{tenant}: every connection must survive the soak\n{}",
            report.summary()
        );
        assert_eq!(
            report.errors,
            0,
            "{tenant}: every response must be byte-identical to the sequential baseline\n{}",
            report.summary()
        );
        assert_eq!(report.sustained, CONNS_PER_TENANT, "{tenant}");
        assert_eq!(
            report.completed,
            report.sent,
            "{tenant}: every scheduled request must complete\n{}",
            report.summary()
        );
        assert!(
            report.sent >= CONNS_PER_TENANT as u64 * 4,
            "{tenant}: the open-loop schedule should land several requests per connection, got {}",
            report.sent
        );
    }

    server.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
