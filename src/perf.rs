//! The `cpistack bench` harness: a reproducible timing snapshot of the
//! three cold/warm paths every release cares about.
//!
//! After the serving layer (PR 2) and persistence (PR 3), warm queries are
//! cache hits — so the system's latency story is decided by two cold
//! paths: **cold collect** (the `oosim` measurement campaign) and **cold
//! fit** (the first nonlinear regression per cache key), plus the **warm
//! serve** fast path that everything else amortises into. This module
//! times all three on the paper campaign (103 benchmarks × 3 machines),
//! verifies that the parallel multi-start fit is *byte-identical* to the
//! strictly-sequential path while timing both, and writes a
//! machine-readable JSON snapshot (`BENCH_10.json`) — the start of a perf
//! trajectory later PRs append to and CI guards against.
//!
//! Since the cluster tier (PR 6), the report also carries a **cluster**
//! section: the same warm `stack` request timed against a backend node
//! directly and through the consistent-hash router, so the router-hop
//! overhead is a tracked number rather than folklore.
//!
//! Since the streaming subsystem (PR 7), a **streaming** section replays
//! a jittered multi-round counter stream through [`stream::pump`] and
//! splits the steady-state refit cost into the full multi-start fan-out
//! versus the warm-start incremental polish — the order-of-magnitude
//! saving the drift-guarded refit path claims is a recorded number here,
//! not an assertion. The streamed campaign also runs the simulator with a
//! quarter-length warm-up ([`SimSource::warmup`]), and the µops that
//! saves per workload is reported alongside.
//!
//! Since the readiness-loop fronts (PR 8), a **connection-scaling**
//! section drives the [`loadgen`](crate::loadgen) harness at three
//! targets over the same warm model: the legacy thread-per-connection
//! engine at the baseline connection count, the readiness event loop at
//! 4× that count, and the cluster router (readiness engine) at 4× — each
//! an open-loop campaign asserting zero in-band errors and zero dropped
//! connections, with the p99 latencies recorded. That turns the event
//! loop's connection-ceiling claim into a tracked number.
//!
//! Since the work-stealing collect pool (PR 9), the cold-collect section
//! times the parallel campaign **and** a strictly-sequential reference,
//! asserts the two record sets are byte-identical, and records the
//! `collect_speedup` alongside. The cold-fit section runs on one thread
//! budget (`--threads` caps each fit's work-stealing multi-start fan-out;
//! concurrent fits time-share it) and carries the fan-outs'
//! objective-evaluation totals — which must also agree between the
//! parallel and sequential legs, since evaluation counts are
//! schedule-independent.
//!
//! Since the design-space sweep service (PR 10), a **sweep** section
//! drives one grid request (ROB × MSHRs × dispatch width over the Core 2)
//! twice through a fresh service: the cold pass simulates and fits every
//! variant, the warm re-sweep of the identical spec must simulate *zero*
//! configurations and refit *nothing* (asserted, not assumed), and both
//! walls are recorded with their variants-per-second rates. Smoke-mode
//! collect walls are also hardened here: sub-second walls are
//! scheduler-sensitive, so smoke runs record the **median of three**
//! repetitions for both collect legs instead of a single draw.
//!
//! The JSON carries a `config_fingerprint` folding every knob that shapes
//! the numbers (µop budget, seed, suite sizes, fit options fingerprint);
//! [`check_against`] only compares runs with equal fingerprints, so a
//! smoke run is never judged against a full-scale baseline.

use crate::loadgen::{self, LoadgenConfig};
use crate::model::workbench::{SimSource, Workbench};
use crate::model::FitOptions;
use crate::service::cluster::{ClusterHarness, RouterConfig};
use crate::service::poller::ServeBackend;
use crate::service::proto::{self, SessionSpec, TcpServerConfig};
use crate::service::sweep::{SweepGrid, SweepSpec};
use crate::service::{stream, CpiService, ModelKey, RefitMode, Response, ServiceConfig};
use crate::sim::machine::MachineConfig;
use pmu::live::ReplaySource;
use pmu::{MachineId, RunRecord, Suite};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Scale and knobs of one bench run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Reduced-budget mode for CI smoke runs.
    pub smoke: bool,
    /// µops simulated per benchmark (the warm-up adds the same again).
    pub uops: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Thread budget for the whole bench (`0` = one per hardware
    /// thread): the collect pool's worker count, and each cold fit's
    /// multi-start fan-out cap (concurrent fits time-share the budget;
    /// the knob never silently compounds into a shards × fit-threads
    /// product the way the pre-PR-9 defaults did).
    pub threads: usize,
    /// Warm-serve repetitions per model key.
    pub warm_iters: usize,
    /// Connection-scaling baseline: the thread-per-connection engine is
    /// measured at this many concurrent connections, the readiness
    /// engine and the router at 4× as many.
    pub conns: usize,
}

impl BenchConfig {
    /// Full scale: the paper campaign at the experiment harness budget.
    pub fn full() -> Self {
        Self {
            smoke: false,
            uops: 200_000,
            seed: 12345,
            threads: 0,
            warm_iters: 20,
            conns: 64,
        }
    }

    /// Reduced budgets for CI: same campaign structure, cheaper µops.
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            uops: 10_000,
            conns: 16,
            ..Self::full()
        }
    }

    /// A fingerprint of every *configured* knob that shapes the timings —
    /// including `threads`, which is invisible to model cache keys (it
    /// cannot change fitted bits) but very much changes wall-clock. Two
    /// runs are comparable only if their fingerprints match; hardware
    /// differences between hosts remain the caller's problem (a
    /// wall-clock gate is only meaningful against a baseline from
    /// comparable hardware).
    pub fn fingerprint(&self, benchmarks: usize, machines: usize) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.uops.hash(&mut h);
        self.seed.hash(&mut h);
        self.smoke.hash(&mut h);
        self.threads.hash(&mut h);
        self.conns.hash(&mut h);
        benchmarks.hash(&mut h);
        machines.hash(&mut h);
        FitOptions::default().fingerprint().hash(&mut h);
        h.finish()
    }
}

/// One bench run's measurements — serialised to `BENCH_10.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"full"` or `"smoke"`.
    pub mode: &'static str,
    /// The configuration measured.
    pub config: BenchConfig,
    /// Benchmarks per machine.
    pub benchmarks: usize,
    /// Machines collected.
    pub machines: usize,
    /// Total records collected.
    pub records: usize,
    /// Config fingerprint (see [`BenchConfig::fingerprint`]).
    pub config_fingerprint: u64,
    /// Wall-clock of the simulator campaign (all machines) on the
    /// work-stealing pool, ms.
    pub cold_collect_ms: f64,
    /// The same campaign strictly sequential (one worker), ms.
    pub cold_collect_seq_ms: f64,
    /// `cold_collect_seq_ms / cold_collect_ms` (records byte-identical —
    /// asserted, not assumed).
    pub collect_speedup: f64,
    /// Wall-clock of the six cold fits through the service, ms.
    pub cold_fit_ms: f64,
    /// The same six fits, strictly sequential (1 worker, 1 fit thread), ms.
    pub cold_fit_seq_ms: f64,
    /// `cold_fit_seq_ms / cold_fit_ms`.
    pub fit_speedup: f64,
    /// Objective evaluations the six cold fits spent in total — equal on
    /// the parallel and sequential legs by construction (evaluation
    /// counts are schedule-independent; the run fails otherwise).
    pub fit_evals: u64,
    /// Mean wall-clock of one warm `stacks` request, ms.
    pub warm_serve_ms: f64,
    /// Mean warm `stack` round-trip straight to the owning cluster node, ms.
    pub cluster_warm_direct_ms: f64,
    /// The same warm `stack` round-trip through the cluster router, ms.
    pub cluster_warm_router_ms: f64,
    /// `cluster_warm_router_ms - cluster_warm_direct_ms`: what one router
    /// hop costs (raw difference, so timing noise can make it slightly
    /// negative on very fast hosts).
    pub router_hop_ms: f64,
    /// Batches pumped by the streaming section (reconciliation included).
    pub stream_batches: usize,
    /// Streaming refits served by the full multi-start fan-out.
    pub stream_full_refits: u64,
    /// Streaming refits served by the warm-start incremental polish.
    pub stream_incremental_refits: u64,
    /// Mean wall-clock of one full streaming refit, ms.
    pub stream_full_ms: f64,
    /// Mean wall-clock of one incremental streaming refit, ms.
    pub stream_incremental_ms: f64,
    /// `stream_full_ms / stream_incremental_ms`: the steady-state saving
    /// the incremental path buys on a stationary stream.
    pub stream_speedup: f64,
    /// µops the streaming campaign's quarter-length warm-up saves per
    /// workload versus the default (warm-up = measurement length).
    pub warmup_saved_uops: u64,
    /// Named variants in the sweep section's grid (stock point included).
    pub sweep_variants: usize,
    /// Wall-clock of the cold sweep — every variant simulated and
    /// fitted, ms.
    pub sweep_cold_ms: f64,
    /// Wall-clock of the warm re-sweep of the identical spec — zero
    /// simulations, zero refits (asserted), ms.
    pub sweep_warm_ms: f64,
    /// Variants ranked per second on the cold pass.
    pub sweep_cold_rate: f64,
    /// Variants ranked per second on the warm pass.
    pub sweep_warm_rate: f64,
    /// Open-loop request rate per connection in the scaling sections,
    /// requests/second.
    pub loadgen_rate: f64,
    /// Connections sustained by the legacy thread-per-connection engine
    /// (zero errors, zero drops).
    pub serve_threads_conns: usize,
    /// p99 latency at that load on the threaded engine, ms.
    pub serve_threads_p99_ms: f64,
    /// Connections sustained by the readiness event loop — 4× the
    /// threaded baseline by construction.
    pub serve_events_conns: usize,
    /// p99 latency at that load on the readiness engine, ms.
    pub serve_events_p99_ms: f64,
    /// Connections sustained through the cluster router (readiness
    /// engine, backed by pooled per-node connections).
    pub router_events_conns: usize,
    /// p99 latency at that load through the router, ms.
    pub router_events_p99_ms: f64,
    /// FNV-1a digest over every fitted parameter's bits, in key order —
    /// equal for the parallel and sequential paths by construction (the
    /// run fails otherwise).
    pub params_digest: u64,
}

impl BenchReport {
    /// Renders the machine-readable snapshot (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": 6,");
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(s, "  \"config\": {{");
        let _ = writeln!(s, "    \"uops\": {},", self.config.uops);
        let _ = writeln!(s, "    \"seed\": {},", self.config.seed);
        let _ = writeln!(s, "    \"threads\": {},", self.config.threads);
        let _ = writeln!(s, "    \"warm_iters\": {},", self.config.warm_iters);
        let _ = writeln!(s, "    \"conns\": {},", self.config.conns);
        let _ = writeln!(s, "    \"benchmarks\": {},", self.benchmarks);
        let _ = writeln!(s, "    \"machines\": {}", self.machines);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"config_fingerprint\": \"{:016x}\",",
            self.config_fingerprint
        );
        let _ = writeln!(s, "  \"records\": {},", self.records);
        let _ = writeln!(s, "  \"cold_collect_ms\": {:.3},", self.cold_collect_ms);
        let _ = writeln!(
            s,
            "  \"cold_collect_seq_ms\": {:.3},",
            self.cold_collect_seq_ms
        );
        let _ = writeln!(s, "  \"collect_speedup\": {:.3},", self.collect_speedup);
        let _ = writeln!(s, "  \"cold_fit_ms\": {:.3},", self.cold_fit_ms);
        let _ = writeln!(s, "  \"cold_fit_seq_ms\": {:.3},", self.cold_fit_seq_ms);
        let _ = writeln!(s, "  \"fit_speedup\": {:.3},", self.fit_speedup);
        let _ = writeln!(s, "  \"fit_evals\": {},", self.fit_evals);
        let _ = writeln!(s, "  \"warm_serve_ms\": {:.4},", self.warm_serve_ms);
        let _ = writeln!(
            s,
            "  \"cluster_warm_direct_ms\": {:.4},",
            self.cluster_warm_direct_ms
        );
        let _ = writeln!(
            s,
            "  \"cluster_warm_router_ms\": {:.4},",
            self.cluster_warm_router_ms
        );
        let _ = writeln!(s, "  \"router_hop_ms\": {:.4},", self.router_hop_ms);
        let _ = writeln!(s, "  \"stream_batches\": {},", self.stream_batches);
        let _ = writeln!(s, "  \"stream_full_refits\": {},", self.stream_full_refits);
        let _ = writeln!(
            s,
            "  \"stream_incremental_refits\": {},",
            self.stream_incremental_refits
        );
        let _ = writeln!(s, "  \"stream_full_ms\": {:.3},", self.stream_full_ms);
        let _ = writeln!(
            s,
            "  \"stream_incremental_ms\": {:.4},",
            self.stream_incremental_ms
        );
        let _ = writeln!(s, "  \"stream_speedup\": {:.2},", self.stream_speedup);
        let _ = writeln!(s, "  \"warmup_saved_uops\": {},", self.warmup_saved_uops);
        let _ = writeln!(s, "  \"sweep_variants\": {},", self.sweep_variants);
        let _ = writeln!(s, "  \"sweep_cold_ms\": {:.3},", self.sweep_cold_ms);
        let _ = writeln!(s, "  \"sweep_warm_ms\": {:.3},", self.sweep_warm_ms);
        let _ = writeln!(s, "  \"sweep_cold_rate\": {:.2},", self.sweep_cold_rate);
        let _ = writeln!(s, "  \"sweep_warm_rate\": {:.1},", self.sweep_warm_rate);
        let _ = writeln!(s, "  \"loadgen_rate\": {:.1},", self.loadgen_rate);
        let _ = writeln!(
            s,
            "  \"serve_threads_conns\": {},",
            self.serve_threads_conns
        );
        let _ = writeln!(
            s,
            "  \"serve_threads_p99_ms\": {:.3},",
            self.serve_threads_p99_ms
        );
        let _ = writeln!(s, "  \"serve_events_conns\": {},", self.serve_events_conns);
        let _ = writeln!(
            s,
            "  \"serve_events_p99_ms\": {:.3},",
            self.serve_events_p99_ms
        );
        let _ = writeln!(
            s,
            "  \"router_events_conns\": {},",
            self.router_events_conns
        );
        let _ = writeln!(
            s,
            "  \"router_events_p99_ms\": {:.3},",
            self.router_events_p99_ms
        );
        let _ = writeln!(s, "  \"params_digest\": \"{:016x}\"", self.params_digest);
        let _ = writeln!(s, "}}");
        s
    }

    /// Human summary for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "cpistack bench ({} | {} benchmarks × {} machines, {} µops, seed {})\n\
             cold collect   {:>10.1} ms  (work-stealing pool)\n\
             collect (seq)  {:>10.1} ms  → speedup {:.2}×, records byte-identical\n\
             cold fit       {:>10.1} ms  ({} keys, parallel multi-start, {} evals)\n\
             cold fit (seq) {:>10.1} ms  → speedup {:.2}×, params byte-identical\n\
             warm serve     {:>10.3} ms/request (all cache hits)\n\
             cluster warm   {:>10.3} ms direct / {:.3} ms via router (hop {:+.3} ms)\n\
             streaming      {:>10.1} ms full / {:.2} ms incremental per refit → \
             {:.1}× ({} full / {} incremental over {} batches)\n\
             warm-up        quarter-length streaming warm-up saves {} µops/workload\n\
             sweep          {:>10.1} ms cold / {:.1} ms warm re-sweep over {} variants → \
             {:.2} / {:.0} variants/s (warm pass simulates and refits nothing)\n\
             connections    threads {} conns p99 {:.3} ms | events {} conns p99 {:.3} ms \
             ({:.0} req/s aggregate open-loop) | router {} conns p99 {:.3} ms (half aggregate; \
             zero errors/drops throughout)\n",
            self.mode,
            self.benchmarks,
            self.machines,
            self.config.uops,
            self.config.seed,
            self.cold_collect_ms,
            self.cold_collect_seq_ms,
            self.collect_speedup,
            self.cold_fit_ms,
            self.machines * 2,
            self.fit_evals,
            self.cold_fit_seq_ms,
            self.fit_speedup,
            self.warm_serve_ms,
            self.cluster_warm_direct_ms,
            self.cluster_warm_router_ms,
            self.router_hop_ms,
            self.stream_full_ms,
            self.stream_incremental_ms,
            self.stream_speedup,
            self.stream_full_refits,
            self.stream_incremental_refits,
            self.stream_batches,
            self.warmup_saved_uops,
            self.sweep_cold_ms,
            self.sweep_warm_ms,
            self.sweep_variants,
            self.sweep_cold_rate,
            self.sweep_warm_rate,
            self.serve_threads_conns,
            self.serve_threads_p99_ms,
            self.serve_events_conns,
            self.serve_events_p99_ms,
            self.loadgen_rate * self.serve_threads_conns as f64,
            self.router_events_conns,
            self.router_events_p99_ms,
        )
    }
}

/// FNV-1a over a byte stream.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Runs the six paper-campaign fits through a [`CpiService`] and returns
/// `(wall ms, fitted-params digest, objective evaluations spent)`.
fn timed_fits(
    config: ServiceConfig,
    machines: &[MachineConfig],
    records: &[RunRecord],
    keys: &[ModelKey],
) -> (f64, u64, u64) {
    let service = CpiService::start(config);
    let client = service.client();
    for machine in machines {
        client.register(machine.into()).expect("register");
    }
    client.ingest(records.to_vec()).expect("ingest");

    let start = Instant::now();
    let streams: Vec<_> = keys
        .iter()
        .enumerate()
        .map(|(i, key)| client.submit_group_at(i, key.clone()))
        .collect();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for stream in streams {
        for response in stream {
            match response {
                Response::Group(group) => {
                    for b in &group.model.params().b {
                        fnv(&mut digest, &b.to_bits().to_le_bytes());
                    }
                    fnv(
                        &mut digest,
                        &group.model.objective().to_bits().to_le_bytes(),
                    );
                }
                Response::Error(e) => panic!("bench fit failed: {e}"),
                _ => {}
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let stats = service.shutdown();
    (elapsed, digest, stats.cache.fit_evals)
}

/// Opens a protocol connection and swallows the banner line.
fn protocol_conn(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect to cluster node");
    stream.set_nodelay(true).ok();
    let mut conn = BufReader::new(stream);
    let mut banner = String::new();
    conn.read_line(&mut banner).expect("banner");
    conn
}

/// Sends one protocol line and reads the complete response — payload
/// lines up to and including the `ok` / `err: ` terminator.
fn roundtrip(conn: &mut BufReader<TcpStream>, line: &str) -> String {
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send command");
    let mut response = String::new();
    loop {
        let mut next = String::new();
        if conn.read_line(&mut next).expect("read response") == 0 {
            panic!("server closed the connection mid-response");
        }
        response.push_str(&next);
        let trimmed = next.trim_end();
        if trimmed == "ok" || trimmed.starts_with("err: ") {
            return response;
        }
    }
}

/// Mean wall-clock of `iters` warm `stack core2 cpu2000` round-trips on
/// one pooled connection, ms.
fn timed_warm_stacks(conn: &mut BufReader<TcpStream>, iters: usize) -> f64 {
    // One untimed request first: the node loads the snapshot / primes the
    // cache, so the timed loop measures the steady warm path only.
    let warm_up = roundtrip(conn, "stack core2 cpu2000");
    assert!(
        !warm_up.contains("err: "),
        "cluster warm-up failed: {warm_up}"
    );
    let iters = iters.max(1);
    let start = Instant::now();
    for _ in 0..iters {
        let resp = roundtrip(conn, "stack core2 cpu2000");
        assert!(!resp.contains("err: "), "cluster warm serve failed: {resp}");
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// The open-loop traffic shape of the connection-scaling sections,
/// derived from the bench mode: smoke keeps campaigns short for CI, full
/// runs longer at a gentler per-connection cadence.
struct ScalingLoad {
    rate: f64,
    duration: Duration,
    /// Campaigns per engine; the recorded p99 is the median. On a small
    /// box the scheduler's bad luck can double a single campaign's tail,
    /// so full mode runs three and smoke (CI) keeps one for speed.
    trials: usize,
}

impl ScalingLoad {
    fn of(config: &BenchConfig) -> Self {
        if config.smoke {
            Self {
                rate: 20.0,
                duration: Duration::from_millis(750),
                trials: 1,
            }
        } else {
            // 64 conns × 5 req/s = 320 req/s aggregate: comfortably
            // below the single-loop engines' rendering saturation on a
            // small box, so every section measures steady-state latency
            // rather than queue backlog. Four seconds per campaign keeps
            // the p99 from being set by a single scheduler stall.
            Self {
                rate: 5.0,
                duration: Duration::from_secs(4),
                trials: 3,
            }
        }
    }

    /// Per-connection cadence at `scale`× the baseline connection
    /// count, holding the *aggregate* offered load constant — the
    /// scaling sections compare connection counts, not throughputs.
    fn rate_at(&self, scale: usize) -> f64 {
        self.rate / scale.max(1) as f64
    }
}

/// Drives [`ScalingLoad::trials`] open-loop loadgen campaigns of mixed
/// warm `stack` / `binstack` traffic at `addr` and returns the median
/// p99 latency in ms.
///
/// # Panics
///
/// Panics on any in-band protocol error or dropped connection — the
/// scaling sections report latency *at sustained load*, never latency
/// with casualties.
fn scaling_loadgen(
    addr: SocketAddr,
    conns: usize,
    scale: usize,
    load: &ScalingLoad,
    what: &str,
) -> f64 {
    let config = LoadgenConfig::new(addr, "core2", "cpu2000")
        .with_connections(conns)
        .with_rate(load.rate_at(scale))
        .with_duration(load.duration);
    let mut p99s: Vec<f64> = (0..load.trials.max(1))
        .map(|_| {
            let report = loadgen::run(&config).expect("loadgen campaign");
            assert_eq!(
                report.errors, 0,
                "{what}: in-band errors under {conns}-connection load"
            );
            assert_eq!(
                report.dropped, 0,
                "{what}: dropped connections under {conns}-connection load"
            );
            report.p99.as_secs_f64() * 1e3
        })
        .collect();
    p99s.sort_by(|a, b| a.total_cmp(b));
    p99s[p99s.len() / 2]
}

/// The direct-serve half of the connection-scaling section: one warm
/// service fronted twice — by the legacy thread-per-connection engine at
/// the baseline connection count and by the readiness event loop at 4×.
/// Returns `(threads p99 ms, events p99 ms)`.
fn connection_bench(config: &BenchConfig, records: &[RunRecord]) -> (f64, f64) {
    let machine = MachineConfig::core2();
    let core2: Vec<RunRecord> = records
        .iter()
        .filter(|r| r.machine() == MachineId::Core2)
        .cloned()
        .collect();
    let service = CpiService::start(ServiceConfig::new().with_workers(2).with_cache_capacity(8));
    let client = service.client();
    client.register((&machine).into()).expect("register");
    client.ingest(core2).expect("ingest");
    let options = FitOptions::quick();
    client
        .fit(ModelKey::new(
            MachineId::Core2,
            Some(Suite::Cpu2000),
            options.clone(),
        ))
        .expect("warm fit");
    let spec = SessionSpec::open(client, options);
    let load = ScalingLoad::of(config);
    let front = |backend: ServeBackend, cap: usize| {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind bench front");
        proto::serve_tcp(
            listener,
            spec.clone(),
            TcpServerConfig::new("cpistack bench")
                .with_idle_timeout(None)
                .with_poll_interval(Duration::from_millis(2))
                .with_max_connections(cap)
                .with_backend(backend),
        )
        .expect("bench front starts")
    };

    let threads_front = front(ServeBackend::Threads, config.conns + 8);
    let threads_p99 = scaling_loadgen(
        threads_front.local_addr(),
        config.conns,
        1,
        &load,
        "threaded engine",
    );
    threads_front.shutdown();

    let events_conns = config.conns * 4;
    let events_front = front(ServeBackend::Events, events_conns + 8);
    let events_p99 = scaling_loadgen(
        events_front.local_addr(),
        events_conns,
        4,
        &load,
        "readiness engine",
    );
    events_front.shutdown();
    service.shutdown();
    (threads_p99, events_p99)
}

/// The cluster section of the bench: boots a 3-node tier, fits Core 2 /
/// CPU2000 once through the router (untimed), then times the same warm
/// `stack` request direct-to-owner and through the router, and finally
/// drives the router half of the connection-scaling section (4× the
/// baseline connection count through the readiness-engine router).
/// Returns `(direct ms, router ms, router loadgen p99 ms)`.
///
/// The fit itself uses [`FitOptions::quick`] — the section measures the
/// serving transport, and a warm `stack` round-trip does not depend on
/// how the cached model was fitted.
fn cluster_warm_bench(config: &BenchConfig, records: &[RunRecord]) -> (f64, f64, f64) {
    let dir = std::env::temp_dir().join(format!("cpistack_bench_cluster_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench cluster scratch dir");
    let core2: Vec<RunRecord> = records
        .iter()
        .filter(|r| r.machine() == MachineId::Core2)
        .cloned()
        .collect();
    let csv = dir.join("core2.csv");
    std::fs::write(&csv, pmu::csv::to_csv(&core2)).expect("write bench csv");

    let router_conns = config.conns * 4;
    let harness = ClusterHarness::builder(dir.join("state"))
        .with_nodes(3)
        .with_workers(2)
        .with_cache(8)
        .with_options(FitOptions::quick())
        .with_router(
            RouterConfig::new("cpistack bench cluster")
                .with_poll_interval(Duration::from_millis(2))
                .with_idle_timeout(Some(Duration::from_secs(60)))
                .with_max_connections(router_conns + 8),
        )
        .start()
        .expect("bench cluster boots");

    // Untimed setup through the router: register, ingest, cold fit.
    let mut router = protocol_conn(harness.router_addr());
    for line in [
        "machine core2 4 14 19 169 30".to_string(),
        format!("ingest {}", csv.display()),
        "fit core2 cpu2000".to_string(),
    ] {
        let resp = roundtrip(&mut router, &line);
        assert!(
            !resp.contains("err: "),
            "bench cluster setup failed at `{line}`: {resp}"
        );
    }

    let owner = harness
        .owner_index("local", "core2")
        .expect("core2 has an owner");
    let mut direct = protocol_conn(harness.node_addr(owner));
    let direct_ms = timed_warm_stacks(&mut direct, config.warm_iters);
    let router_ms = timed_warm_stacks(&mut router, config.warm_iters);

    // Router scaling: the same warm traffic at 4× the threaded
    // baseline's connection count through the router, at HALF the
    // direct sections' aggregate rate (scale 8, not 4). One readiness
    // loop proxies both directions of every request here while the
    // 3-node tier shares the same cores, so the direct sections' full
    // aggregate is past this topology's steady state on a small bench
    // box — and a saturated queue measures backlog, not latency.
    let router_p99 = scaling_loadgen(
        harness.router_addr(),
        router_conns,
        8,
        &ScalingLoad::of(config),
        "router",
    );

    roundtrip(&mut router, "quit");
    roundtrip(&mut direct, "quit");
    drop(router);
    drop(direct);
    harness.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (direct_ms, router_ms, router_p99)
}

/// The streaming section's measured numbers.
struct StreamingNumbers {
    batches: usize,
    full_refits: u64,
    incremental_refits: u64,
    full_ms: f64,
    incremental_ms: f64,
    saved_uops: u64,
}

/// The streaming section: collect a Core 2 / CPU2000 campaign with a
/// quarter-length warm-up, replay it as a jittered multi-round stream
/// through [`stream::pump`] (one batch per round, full-budget options so
/// the fan-out cost matches the cold-fit section), and split the mean
/// refit wall-clock by mode. Rounds derive from `warm_iters` so the
/// config fingerprint is untouched.
fn streaming_bench(config: &BenchConfig) -> StreamingNumbers {
    let machine = MachineConfig::core2();
    let warmup = config.uops / 4;
    let records = SimSource::new()
        .suite(crate::workloads::suites::cpu2000())
        .uops(config.uops)
        .warmup(warmup)
        .seed(config.seed)
        .collect_config(&machine);
    let batch = records.len().max(1);
    let mut source = ReplaySource::new(records)
        .batch_size(batch)
        .rounds(config.warm_iters.max(3))
        .jitter(config.seed);
    let options = FitOptions::default().with_threads(config.threads);
    let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), options);
    let service = CpiService::start(ServiceConfig::new().with_workers(2));
    let client = service.client();
    client.register((&machine).into()).expect("register");
    let (mut full_ms, mut full_n) = (0.0f64, 0u64);
    let (mut incr_ms, mut incr_n) = (0.0f64, 0u64);
    let summary = stream::pump(
        &client,
        &key,
        &mut source,
        &stream::PumpOptions::default(),
        |batch, _| match batch.mode {
            Some(RefitMode::Full) => {
                full_ms += batch.millis;
                full_n += 1;
            }
            Some(RefitMode::Incremental) => {
                incr_ms += batch.millis;
                incr_n += 1;
            }
            _ => {}
        },
    )
    .expect("streaming pump");
    service.shutdown();
    StreamingNumbers {
        batches: summary.batches + usize::from(summary.reconciled),
        full_refits: full_n,
        incremental_refits: incr_n,
        full_ms: full_ms / full_n.max(1) as f64,
        incremental_ms: incr_ms / incr_n.max(1) as f64,
        saved_uops: config.uops - warmup,
    }
}

/// The sweep section's measured numbers.
struct SweepNumbers {
    variants: usize,
    cold_ms: f64,
    warm_ms: f64,
}

/// The sweep section: one design-space grid (ROB 96/192 × MSHRs 16/32 ×
/// dispatch 4/6 over the Core 2, a 12-benchmark CPU2000 slice) driven
/// twice through a fresh service. The cold pass simulates and fits every
/// variant; the warm re-sweep of the identical spec must come back with
/// `simulated 0 configs` and every variant served from cache — asserted
/// here, so the recorded warm wall is genuinely the zero-refit path.
fn sweep_bench(config: &BenchConfig) -> SweepNumbers {
    let grid = SweepGrid::new()
        .rob([96, 192])
        .mshrs([16, 32])
        .dispatch([4, 6]);
    let mut spec = SweepSpec::new(MachineId::Core2, grid, Suite::Cpu2000);
    spec.options = FitOptions::quick().with_threads(config.threads);
    spec.uops = config.uops;
    spec.seed = config.seed;
    spec.limit = Some(12);

    let service = CpiService::start(ServiceConfig::new());
    let client = service.client();

    let start = Instant::now();
    let cold = client.sweep(spec.clone()).expect("cold sweep");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        cold.simulated_configs > 0,
        "cold sweep must simulate its grid"
    );

    let start = Instant::now();
    let warm = client.sweep(spec).expect("warm re-sweep");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        warm.simulated_configs, 0,
        "warm re-sweep must simulate nothing"
    );
    assert_eq!(warm.simulated_runs, 0, "warm re-sweep must run nothing");
    assert!(
        warm.results.iter().all(|r| r.cached),
        "warm re-sweep must serve every variant from cache"
    );
    assert_eq!(cold.results.len(), warm.results.len());
    service.shutdown();

    SweepNumbers {
        variants: cold.results.len(),
        cold_ms,
        warm_ms,
    }
}

/// Runs `trials` timed repetitions of `collect` and returns the median
/// wall-clock in ms plus the (byte-identical, asserted) record set.
///
/// Smoke-mode collect walls are sub-second and scheduler-sensitive: a
/// single bad draw used to trip — or mask — the `--check` cold-collect
/// gate even at its 3× slack. The median of three keeps one outlier from
/// deciding the gate; full-scale walls are long enough that one run
/// (`trials == 1`) stays representative.
fn median_collect(trials: usize, collect: impl Fn() -> Vec<RunRecord>) -> (f64, Vec<RunRecord>) {
    let mut walls = Vec::with_capacity(trials.max(1));
    let mut records: Option<Vec<RunRecord>> = None;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let got = collect();
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        match &records {
            Some(first) => assert_eq!(first, &got, "collect repetitions must be byte-identical"),
            None => records = Some(got),
        }
    }
    walls.sort_by(|a, b| a.total_cmp(b));
    (walls[walls.len() / 2], records.expect("at least one trial"))
}

/// Runs the whole bench: cold collect, cold fit (parallel and sequential,
/// asserting byte-identical parameters), warm serve.
///
/// # Panics
///
/// Panics if any pipeline stage fails, or if the parallel and sequential
/// fits disagree — that would be a correctness bug, not a perf number.
pub fn run_bench(config: BenchConfig) -> BenchReport {
    let machines = MachineConfig::paper_machines();
    let source = || {
        SimSource::paper_suites()
            .uops(config.uops)
            .seed(config.seed)
    };

    // --- Cold collect: the simulator campaign on the work-stealing
    // --- pool, then a strictly-sequential reference over the same
    // --- source. The record streams must be byte-identical — the pool
    // --- pre-assigns output slots, so scheduling can't reorder them.
    // --- Smoke walls are the median of three (see `median_collect`). ----
    let collect_trials = if config.smoke { 3 } else { 1 };
    let (cold_collect_ms, records) = median_collect(collect_trials, || {
        Workbench::new()
            .machines(machines.iter())
            .source(source())
            .threads(config.threads)
            .collect()
            .expect("bench collect")
            .records()
            .cloned()
            .collect()
    });
    let benchmarks = records.len() / machines.len();

    let (cold_collect_seq_ms, seq_records) = median_collect(collect_trials, || {
        Workbench::new()
            .machines(machines.iter())
            .source(source())
            .parallel(false)
            .collect()
            .expect("bench sequential collect")
            .records()
            .cloned()
            .collect()
    });
    assert_eq!(
        records, seq_records,
        "work-stealing and sequential collect must be byte-identical"
    );
    drop(seq_records);

    let options = FitOptions::default().with_threads(config.threads);
    let keys: Vec<ModelKey> = machines
        .iter()
        .flat_map(|m| Suite::ALL.map(|suite| ModelKey::new(m.id, Some(suite), options.clone())))
        .collect();

    // --- Cold fit: parallel multi-start across the worker shards. ------
    // One thread budget for the whole stage: every fit's multi-start may
    // fan out over the full budget, and concurrent fits time-share it.
    // The fits are heavily skewed (one key can cost 2–3× the mean in
    // objective evaluations), so an even budget/fits split starves the
    // straggler at the tail — once the short fits drain, the long fit's
    // work-stealing start pool is what keeps the idle cores busy. What
    // capped BENCH_8 at 1.25× was not thread count but the *static
    // stride* inside each fit: starts were pre-dealt to threads, so the
    // unlucky thread serialised the tail no matter how many cores were
    // free.
    let budget = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };
    let (cold_fit_ms, digest, fit_evals) = timed_fits(
        ServiceConfig::new()
            .with_workers(keys.len())
            .with_fit_threads(budget),
        &machines,
        &records,
        &keys,
    );

    // --- Cold fit, strictly sequential: 1 shard, 1 fit thread. ---------
    let (cold_fit_seq_ms, seq_digest, seq_fit_evals) = timed_fits(
        ServiceConfig::new().with_workers(1).with_fit_threads(1),
        &machines,
        &records,
        &keys,
    );
    assert_eq!(
        digest, seq_digest,
        "parallel and sequential fits must be byte-identical"
    );
    assert_eq!(
        fit_evals, seq_fit_evals,
        "objective-evaluation counts are schedule-independent"
    );

    // --- Warm serve: every repeat request is a cache hit. --------------
    let service = CpiService::start(ServiceConfig::new());
    let client = service.client();
    for machine in &machines {
        client.register(machine.into()).expect("register");
    }
    client.ingest(records.clone()).expect("ingest");
    for key in &keys {
        client.fit(key.clone()).expect("warm-up fit");
    }
    let start = Instant::now();
    let mut served = 0usize;
    for _ in 0..config.warm_iters {
        for key in &keys {
            let (report, stacks) = client.stacks(key.clone()).expect("warm stacks");
            assert!(report.cached, "warm serve must be a cache hit");
            assert!(!stacks.is_empty());
            served += 1;
        }
    }
    let warm_serve_ms = start.elapsed().as_secs_f64() * 1e3 / served.max(1) as f64;
    service.shutdown();

    // --- Cluster warm serve: router hop vs direct-to-owner, plus the
    // --- router half of the connection-scaling section. ----------------
    let (cluster_warm_direct_ms, cluster_warm_router_ms, router_events_p99_ms) =
        cluster_warm_bench(&config, &records);

    // --- Connection scaling: threaded engine vs readiness loop. --------
    let (serve_threads_p99_ms, serve_events_p99_ms) = connection_bench(&config, &records);
    let scaling_load = ScalingLoad::of(&config);

    // --- Streaming: incremental vs full refit on a jittered stream. ----
    let streaming = streaming_bench(&config);

    // --- Sweep: one grid request cold, then the identical spec warm. ---
    let sweep = sweep_bench(&config);

    let config_fingerprint = config.fingerprint(benchmarks, machines.len());
    BenchReport {
        mode: if config.smoke { "smoke" } else { "full" },
        benchmarks,
        machines: machines.len(),
        records: records.len(),
        config_fingerprint,
        cold_collect_ms,
        cold_collect_seq_ms,
        collect_speedup: cold_collect_seq_ms / cold_collect_ms.max(1e-9),
        cold_fit_ms,
        cold_fit_seq_ms,
        fit_speedup: cold_fit_seq_ms / cold_fit_ms.max(1e-9),
        fit_evals,
        warm_serve_ms,
        cluster_warm_direct_ms,
        cluster_warm_router_ms,
        router_hop_ms: cluster_warm_router_ms - cluster_warm_direct_ms,
        stream_batches: streaming.batches,
        stream_full_refits: streaming.full_refits,
        stream_incremental_refits: streaming.incremental_refits,
        stream_full_ms: streaming.full_ms,
        stream_incremental_ms: streaming.incremental_ms,
        stream_speedup: if streaming.incremental_refits > 0 {
            streaming.full_ms / streaming.incremental_ms.max(1e-9)
        } else {
            0.0
        },
        warmup_saved_uops: streaming.saved_uops,
        sweep_variants: sweep.variants,
        sweep_cold_ms: sweep.cold_ms,
        sweep_warm_ms: sweep.warm_ms,
        sweep_cold_rate: sweep.variants as f64 / (sweep.cold_ms / 1e3).max(1e-9),
        sweep_warm_rate: sweep.variants as f64 / (sweep.warm_ms / 1e3).max(1e-9),
        loadgen_rate: scaling_load.rate,
        serve_threads_conns: config.conns,
        serve_threads_p99_ms,
        serve_events_conns: config.conns * 4,
        serve_events_p99_ms,
        router_events_conns: config.conns * 4,
        router_events_p99_ms,
        params_digest: digest,
        config,
    }
}

/// Pulls `"key": <number>` out of a bench JSON snapshot.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of a bench JSON snapshot.
fn json_string<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

/// The regression gate behind `cpistack bench --check <baseline>`:
/// compares this run's cold-fit wall-clock against a committed baseline
/// and fails when it regressed beyond `tolerance` (0.25 = +25%). The
/// noisier surfaces get proportionally more slack: cold collect at 3×
/// the tolerance, readiness-engine p99 at 4×.
///
/// Runs with different `config_fingerprint`s are incomparable (different
/// scale, suite set or fit options) and pass with a note — the gate never
/// judges a smoke run against a full-scale snapshot.
///
/// # Errors
///
/// An explanatory message when the baseline is unreadable or a gated
/// wall-clock regressed past its limit.
pub fn check_against(
    current: &BenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    let base_fp = json_string(baseline_json, "config_fingerprint")
        .ok_or("baseline JSON has no config_fingerprint")?;
    let current_fp = format!("{:016x}", current.config_fingerprint);
    if base_fp != current_fp {
        return Ok(format!(
            "baseline incomparable (config {base_fp} vs {current_fp}); skipping regression gate"
        ));
    }
    let base_fit =
        json_number(baseline_json, "cold_fit_ms").ok_or("baseline JSON has no cold_fit_ms")?;
    let limit = base_fit * (1.0 + tolerance);
    if current.cold_fit_ms > limit {
        return Err(format!(
            "cold fit regressed: {:.1} ms vs baseline {:.1} ms (limit {:.1} ms, +{:.0}%)",
            current.cold_fit_ms,
            base_fit,
            limit,
            tolerance * 100.0
        ));
    }
    // Schema-5 baselines also gate the cold-collect wall-clock: the
    // collect pool is now a tracked perf surface, and a regression there
    // is exactly the wall PR 9 tore down. The smoke collect wall is
    // short (~0.6 s) and scheduler-sensitive, so like the p99 gate below
    // it gets extra slack — 3× the cold-fit tolerance (+75% at the
    // default 0.25) — and since schema 6 both sides of the comparison are
    // the *median of three* runs in smoke mode rather than single draws
    // (one unlucky scheduling draw used to trip, or mask, the gate even
    // at that slack); the byte-identity assertion and the collect_scaling
    // bench guard are the tight structural checks. Older baselines pass
    // the collect gate vacuously (the comparison above already requires
    // matching fingerprints, so in practice schema < 5 never reaches
    // here — the fingerprint folds the fit options).
    let mut collect_note = String::new();
    if let Some(base_collect) = json_number(baseline_json, "cold_collect_ms") {
        let collect_limit = base_collect * (1.0 + 3.0 * tolerance);
        if current.cold_collect_ms > collect_limit {
            return Err(format!(
                "cold collect regressed: {:.1} ms vs baseline {:.1} ms (limit {:.1} ms, +{:.0}%)",
                current.cold_collect_ms,
                base_collect,
                collect_limit,
                3.0 * tolerance * 100.0
            ));
        }
        collect_note = format!(
            "; cold collect {:.1} ms within {:.1} ms budget",
            current.cold_collect_ms, collect_limit
        );
    }
    // Schema-4 baselines also gate the readiness engine's p99 under the
    // connection-scaling load. Latency tails are far noisier than a
    // six-fit wall-clock, so the slack is 4× the cold-fit tolerance
    // (+100% at the default 0.25) — the gate catches an engine that
    // collapsed, not one that wobbled. Schema-3 baselines lack the field
    // and skip this check.
    let mut p99_note = String::new();
    if let Some(base_p99) = json_number(baseline_json, "serve_events_p99_ms") {
        let p99_limit = base_p99 * (1.0 + 4.0 * tolerance);
        if current.serve_events_p99_ms > p99_limit {
            return Err(format!(
                "readiness-engine p99 regressed: {:.3} ms vs baseline {:.3} ms (limit {:.3} ms)",
                current.serve_events_p99_ms, base_p99, p99_limit
            ));
        }
        p99_note = format!(
            "; events p99 {:.3} ms within {:.3} ms budget",
            current.serve_events_p99_ms, p99_limit
        );
    }
    // Schema-6 baselines also gate the cold sweep wall-clock — the
    // design-space grid is simulation-dominated like the collect wall,
    // so it shares the 3× slack. The warm re-sweep is asserted
    // structurally inside the bench (zero simulations, all cache hits)
    // rather than gated on wall-clock: a few milliseconds of pure cache
    // serving is all noise in relative terms.
    let mut sweep_note = String::new();
    if let Some(base_sweep) = json_number(baseline_json, "sweep_cold_ms") {
        let sweep_limit = base_sweep * (1.0 + 3.0 * tolerance);
        if current.sweep_cold_ms > sweep_limit {
            return Err(format!(
                "cold sweep regressed: {:.1} ms vs baseline {:.1} ms (limit {:.1} ms, +{:.0}%)",
                current.sweep_cold_ms,
                base_sweep,
                sweep_limit,
                3.0 * tolerance * 100.0
            ));
        }
        sweep_note = format!(
            "; cold sweep {:.1} ms within {:.1} ms budget",
            current.sweep_cold_ms, sweep_limit
        );
    }
    Ok(format!(
        "cold fit {:.1} ms within {:.1} ms budget (baseline {:.1} ms +{:.0}%){collect_note}{p99_note}{sweep_note}",
        current.cold_fit_ms,
        limit,
        base_fit,
        tolerance * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            smoke: true,
            uops: 1_000,
            seed: 7,
            threads: 0,
            warm_iters: 1,
            // Keeps the scaling sections cheap in unit tests: threads at
            // 2 connections, events and router at 8.
            conns: 2,
        }
    }

    #[test]
    fn tiny_bench_round_trips_and_gates() {
        // One reduced-budget end-to-end run exercises every stage,
        // including the parallel-vs-sequential byte-identity assertion.
        let mut config = tiny();
        config.warm_iters = 1;
        let report = run_bench(config);
        assert_eq!(report.machines, 3);
        assert_eq!(report.benchmarks, 103);
        assert!(report.cold_collect_ms > 0.0);
        assert!(report.cold_fit_ms > 0.0);
        assert!(report.cluster_warm_direct_ms > 0.0);
        assert!(report.cluster_warm_router_ms > 0.0);
        // Streaming: the first round anchors full, later jittered rounds
        // polish incrementally, and the polish must be the cheaper path.
        assert!(report.stream_full_refits >= 1);
        assert!(report.stream_incremental_refits >= 1);
        assert!(
            report.stream_speedup > 1.0,
            "incremental refits should beat the full fan-out ({:.2}×)",
            report.stream_speedup
        );
        assert_eq!(report.warmup_saved_uops, 750, "1000 µops - 250 warm-up");
        // Connection scaling: the readiness engine and the router carried
        // 4× the threaded baseline with zero errors/drops (asserted
        // inside the sections) and real latency numbers.
        assert_eq!(report.serve_threads_conns, 2);
        assert_eq!(report.serve_events_conns, 8);
        assert_eq!(report.router_events_conns, 8);
        assert!(report.serve_threads_p99_ms > 0.0);
        assert!(report.serve_events_p99_ms > 0.0);
        assert!(report.router_events_p99_ms > 0.0);
        // The collect reference leg ran and the speedup is a real ratio
        // (the byte-identity of the two record sets is asserted inside
        // `run_bench` itself).
        assert!(report.cold_collect_seq_ms > 0.0);
        assert!(report.collect_speedup > 0.0);
        assert!(report.fit_evals > 0, "six cold fits spent zero evals?");
        // Sweep: the cold pass simulated the grid, the warm re-sweep
        // served it all from cache (asserted inside the section), and
        // the recorded rates are real ratios.
        assert_eq!(
            report.sweep_variants, 8,
            "2×2×2 grid, stock point collapsed"
        );
        assert!(report.sweep_cold_ms > 0.0);
        assert!(report.sweep_warm_ms > 0.0);
        assert!(report.sweep_cold_rate > 0.0);
        assert!(report.sweep_warm_rate > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": 6"));
        assert!(json.contains("\"cold_collect_seq_ms\""));
        assert!(json.contains("\"collect_speedup\""));
        assert!(json.contains(&format!("\"fit_evals\": {}", report.fit_evals)));
        assert!(json.contains("\"cluster_warm_router_ms\""));
        assert!(json.contains("\"stream_speedup\""));
        assert!(json.contains("\"warmup_saved_uops\": 750"));
        assert!(json.contains("\"serve_events_conns\": 8"));
        assert!(json.contains("\"serve_events_p99_ms\""));
        assert!(json.contains("\"sweep_variants\": 8"));
        assert!(json.contains("\"sweep_cold_ms\""));
        assert!(json.contains("\"sweep_warm_rate\""));
        let parsed = json_number(&json, "cold_collect_ms").expect("field present");
        assert!((parsed - report.cold_collect_ms).abs() < 0.01);

        // Same fingerprint: the gate passes against itself…
        let ok = check_against(&report, &json, 0.25).expect("self-comparison passes");
        assert!(ok.contains("within"), "{ok}");
        // …and fails against an impossibly fast doctored baseline.
        let doctored = json.replace(
            &format!("\"cold_fit_ms\": {:.3}", report.cold_fit_ms),
            "\"cold_fit_ms\": 0.001",
        );
        let err = check_against(&report, &doctored, 0.25).expect_err("regression detected");
        assert!(err.contains("regressed"), "{err}");
        // …and the cold-collect gate trips on its own doctored baseline.
        let doctored = json.replace(
            &format!("\"cold_collect_ms\": {:.3}", report.cold_collect_ms),
            "\"cold_collect_ms\": 0.001",
        );
        let err = check_against(&report, &doctored, 0.25).expect_err("collect regression detected");
        assert!(err.contains("cold collect regressed"), "{err}");
        // …and the p99 gate trips against an impossibly tight baseline.
        let doctored = json.replace(
            &format!("\"serve_events_p99_ms\": {:.3}", report.serve_events_p99_ms),
            "\"serve_events_p99_ms\": 0.00001",
        );
        let err = check_against(&report, &doctored, 0.25).expect_err("p99 regression detected");
        assert!(err.contains("p99 regressed"), "{err}");
        // …and the sweep gate trips against an impossibly fast baseline.
        let doctored = json.replace(
            &format!("\"sweep_cold_ms\": {:.3}", report.sweep_cold_ms),
            "\"sweep_cold_ms\": 0.001",
        );
        let err = check_against(&report, &doctored, 0.25).expect_err("sweep regression detected");
        assert!(err.contains("cold sweep regressed"), "{err}");

        // Different fingerprint: incomparable, never a failure.
        let other = json.replace(
            &format!("{:016x}", report.config_fingerprint),
            "deadbeefdeadbeef",
        );
        let skipped = check_against(&report, &other, 0.25).expect("incomparable passes");
        assert!(skipped.contains("incomparable"), "{skipped}");
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        let report = BenchReport {
            mode: "smoke",
            config: tiny(),
            benchmarks: 103,
            machines: 3,
            records: 309,
            config_fingerprint: 1,
            cold_collect_ms: 1.0,
            cold_collect_seq_ms: 1.0,
            collect_speedup: 1.0,
            cold_fit_ms: 1.0,
            cold_fit_seq_ms: 1.0,
            fit_speedup: 1.0,
            fit_evals: 100,
            warm_serve_ms: 0.1,
            cluster_warm_direct_ms: 0.1,
            cluster_warm_router_ms: 0.2,
            router_hop_ms: 0.1,
            stream_batches: 4,
            stream_full_refits: 2,
            stream_incremental_refits: 2,
            stream_full_ms: 10.0,
            stream_incremental_ms: 1.0,
            stream_speedup: 10.0,
            warmup_saved_uops: 750,
            sweep_variants: 8,
            sweep_cold_ms: 100.0,
            sweep_warm_ms: 1.0,
            sweep_cold_rate: 80.0,
            sweep_warm_rate: 8000.0,
            loadgen_rate: 20.0,
            serve_threads_conns: 2,
            serve_threads_p99_ms: 1.0,
            serve_events_conns: 8,
            serve_events_p99_ms: 1.0,
            router_events_conns: 8,
            router_events_p99_ms: 1.0,
            params_digest: 2,
        };
        assert!(check_against(&report, "not json", 0.25).is_err());
        assert!(check_against(
            &report,
            "{\"config_fingerprint\": \"0000000000000001\"}",
            0.25
        )
        .is_err());
    }
}
