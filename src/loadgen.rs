//! `cpistack loadgen` — an open-loop connection-scaling load harness
//! for the serving tier.
//!
//! The readiness-loop TCP fronts (PR 8) claim connection scaling; this
//! module is how the claim is *measured*, not asserted. It drives N
//! concurrent connections × M requests/second each of warm `stack` /
//! `binstack` traffic at a server (a node front or the cluster router —
//! both speak the same protocol) and reports completion counts, in-band
//! protocol errors, dropped connections, and latency percentiles
//! (p50/p95/p99).
//!
//! Scheduling is **open-loop**: every connection sends on its own fixed
//! cadence regardless of whether earlier responses have returned, so a
//! server that falls behind accumulates queueing delay in the measured
//! latencies instead of silently slowing the generator down (the
//! coordinated-omission trap of closed-loop harnesses). Latency is
//! measured from the *scheduled* send time to response completion.
//!
//! Three consumers share this engine: the `cpistack loadgen` CLI
//! subcommand, the `BENCH_9.json` connection-scaling section in
//! [`perf`](crate::perf), and the `loadgen_soak` integration suite
//! (which additionally pins every response byte-identical to a
//! sequential `Workbench::fit` baseline via [`RequestTemplate::expect`]).

use crate::service::poller::{raw_fd, Interest, PollEvent, Poller};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One request in the per-connection round-robin script.
#[derive(Debug, Clone)]
pub struct RequestTemplate {
    /// The command line to send (no trailing newline).
    pub line: String,
    /// When set, the complete response (payload lines, any binary
    /// frame, the terminator) must equal these bytes exactly; any
    /// mismatch counts as an error. When unset, a response terminated
    /// by `err: …` counts as an error.
    pub expect: Option<Vec<u8>>,
}

impl RequestTemplate {
    /// A request checked only for an `ok` terminator.
    pub fn new(line: impl Into<String>) -> Self {
        Self {
            line: line.into(),
            expect: None,
        }
    }

    /// A request whose full response bytes are pinned.
    pub fn expecting(line: impl Into<String>, expect: Vec<u8>) -> Self {
        Self {
            line: line.into(),
            expect: Some(expect),
        }
    }
}

/// Harness knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to drive (a node front or a cluster router).
    pub addr: SocketAddr,
    /// Concurrent connections, all established before traffic starts.
    pub connections: usize,
    /// Requests per second *per connection* (open-loop cadence).
    pub rate: f64,
    /// How long each connection keeps scheduling requests.
    pub duration: Duration,
    /// Optional `hello <token>` handshake sent (and verified) before
    /// the measured traffic.
    pub hello: Option<String>,
    /// The request script, cycled per connection. Must be non-empty.
    pub requests: Vec<RequestTemplate>,
    /// Per-connection connect budget.
    pub connect_timeout: Duration,
}

impl LoadgenConfig {
    /// A config with the default warm-traffic shape: `stack` and
    /// `binstack` alternating on one machine/suite.
    pub fn new(addr: SocketAddr, machine: &str, suite: &str) -> Self {
        Self {
            addr,
            connections: 16,
            rate: 10.0,
            duration: Duration::from_secs(2),
            hello: None,
            requests: vec![
                RequestTemplate::new(format!("stack {machine} {suite}")),
                RequestTemplate::new(format!("binstack {machine} {suite}")),
            ],
            connect_timeout: Duration::from_secs(5),
        }
    }

    /// Sets the connection count (minimum 1).
    pub fn with_connections(mut self, connections: usize) -> Self {
        self.connections = connections.max(1);
        self
    }

    /// Sets the per-connection request rate (clamped positive).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            1.0
        };
        self
    }

    /// Sets the traffic duration.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the auth handshake token.
    pub fn with_hello(mut self, token: impl Into<String>) -> Self {
        self.hello = Some(token.into());
        self
    }

    /// Replaces the request script.
    pub fn with_requests(mut self, requests: Vec<RequestTemplate>) -> Self {
        self.requests = requests;
        self
    }
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections the run asked for.
    pub connections: usize,
    /// Connections that established, completed the handshake, and
    /// survived to drain every response.
    pub sustained: usize,
    /// Connections that failed to connect, were rejected (`err: busy`),
    /// or died before draining.
    pub dropped: usize,
    /// Requests written.
    pub sent: u64,
    /// Complete responses read back.
    pub completed: u64,
    /// In-band protocol errors: an `err:` terminator (or, for pinned
    /// requests, any byte mismatch).
    pub errors: u64,
    /// Wall clock of the whole traffic phase.
    pub elapsed: Duration,
    /// Latency percentiles over completed responses, scheduled-send →
    /// response-complete.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst observed.
    pub max: Duration,
}

impl LoadgenReport {
    /// Completed requests per second over the traffic phase.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line human summary (the CLI prints this).
    pub fn summary(&self) -> String {
        format!(
            "loadgen: conns {}/{} sent {} completed {} errors {} dropped {}\n\
             latency: p50 {:.3} ms p95 {:.3} ms p99 {:.3} ms max {:.3} ms ({:.0} req/s)",
            self.sustained,
            self.connections,
            self.sent,
            self.completed,
            self.errors,
            self.dropped,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
            self.throughput(),
        )
    }
}

struct ConnOutcome {
    sent: u64,
    completed: u64,
    errors: u64,
    dropped: bool,
    latencies: Vec<Duration>,
}

/// Runs one load campaign: connect everything, handshake, then open-loop
/// traffic for the configured duration, then drain.
///
/// The generator itself is multiplexed: one thread drives every
/// connection off the same readiness [`Poller`] the serving loop runs
/// on, so measured tail latency reflects the server, not scheduler
/// jitter from hundreds of generator threads. Platforms without a
/// poller fall back to a thread pair per connection.
///
/// # Errors
///
/// Only configuration errors (an empty request script) fail the call;
/// connection-level failures are tallied as `dropped` in the report.
pub fn run(config: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    if config.requests.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "loadgen needs at least one request template",
        ));
    }
    match Poller::new() {
        Ok(poller) => run_events(config, poller),
        Err(_) => Ok(run_threads(config)),
    }
}

/// Folds per-connection outcomes into the report.
fn assemble(
    config: &LoadgenConfig,
    outcomes: Vec<ConnOutcome>,
    elapsed: Duration,
) -> LoadgenReport {
    let mut latencies: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.latencies.iter().copied())
        .collect();
    latencies.sort_unstable();
    let pick = |q: f64| -> Duration {
        if latencies.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx]
        }
    };
    LoadgenReport {
        connections: config.connections,
        sustained: outcomes.iter().filter(|o| !o.dropped).count(),
        dropped: outcomes.iter().filter(|o| o.dropped).count(),
        sent: outcomes.iter().map(|o| o.sent).sum(),
        completed: outcomes.iter().map(|o| o.completed).sum(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        elapsed,
        p50: pick(0.50),
        p95: pick(0.95),
        p99: pick(0.99),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
    }
}

/// The portable fallback engine: a writer + reader thread pair per
/// connection, gated on a shared barrier.
fn run_threads(config: &LoadgenConfig) -> LoadgenReport {
    let start_gate = Arc::new(Barrier::new(config.connections));
    let started = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|i| {
                let gate = Arc::clone(&start_gate);
                scope.spawn(move || drive_connection(config, i, &gate))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(ConnOutcome {
                    sent: 0,
                    completed: 0,
                    errors: 0,
                    dropped: true,
                    latencies: Vec::new(),
                })
            })
            .collect()
    });
    assemble(config, outcomes, started.elapsed())
}

// ---------------------------------------------------------------------------
// The multiplexed (readiness-loop) generator engine
// ---------------------------------------------------------------------------

/// Where one multiplexed connection is in its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for the server's banner line.
    Banner,
    /// Waiting for the `hello <token>` acknowledgement.
    Hello,
    /// Measured open-loop traffic (and, after `quit`, its ack).
    Traffic,
}

/// One connection's state on the generator's event loop: buffered
/// unwritten output, the incremental response parser (partial line,
/// pending frame bytes, accumulated response), and the tallies the
/// report is folded from.
struct EventConn {
    stream: TcpStream,
    phase: Duration,
    stage: Stage,
    out: Vec<u8>,
    out_at: usize,
    want_write: bool,
    line: Vec<u8>,
    response: Vec<u8>,
    frame_left: usize,
    sent: u64,
    completed: u64,
    errors: u64,
    latencies: Vec<Duration>,
    quit_sent: bool,
    saw_quit_ack: bool,
    /// Transport death or protocol rejection — counts as dropped.
    failed: bool,
    /// Session complete (quit acked); close cleanly.
    finished: bool,
    /// Deregistered from the poller; terminal.
    done: bool,
}

impl EventConn {
    fn outcome(&self) -> ConnOutcome {
        ConnOutcome {
            sent: self.sent,
            completed: self.completed,
            errors: self.errors,
            dropped: self.failed
                || !self.quit_sent
                || !self.saw_quit_ack
                || self.completed < self.sent,
            latencies: self.latencies.clone(),
        }
    }
}

/// Writes as much buffered output as the socket accepts right now.
fn flush_conn(conn: &mut EventConn) {
    while conn.out_at < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_at..]) {
            Ok(0) => {
                conn.failed = true;
                return;
            }
            Ok(n) => conn.out_at += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.failed = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_at = 0;
}

/// Aligns the poller's interest set with whether output is pending.
fn sync_interest(poller: &mut Poller, token: u64, conn: &mut EventConn) {
    let want_write = conn.out_at < conn.out.len();
    if want_write != conn.want_write
        && poller
            .modify(
                raw_fd(&conn.stream),
                token,
                Interest {
                    read: true,
                    write: want_write,
                },
            )
            .is_err()
    {
        conn.failed = true;
    }
    conn.want_write = want_write;
}

/// Takes a connection off the loop (terminal).
fn close_conn(poller: &mut Poller, conn: &mut EventConn) {
    if !conn.done {
        let _ = poller.remove(raw_fd(&conn.stream));
        conn.done = true;
    }
}

/// Consumes one chunk of received bytes through the per-connection
/// parser: lines are delimited incrementally, `frame <kind> <len>`
/// announcements switch to raw-byte consumption, and each `ok` / `err:`
/// terminator completes one response. `begin` is the traffic epoch
/// (None during the handshake, when nothing is measured).
fn feed(conn: &mut EventConn, chunk: &[u8], config: &LoadgenConfig, begin: Option<Instant>) {
    let interval = Duration::from_secs_f64(1.0 / config.rate);
    let mut at = 0;
    while at < chunk.len() && !conn.failed && !conn.finished {
        if conn.frame_left > 0 {
            let take = conn.frame_left.min(chunk.len() - at);
            conn.response.extend_from_slice(&chunk[at..at + take]);
            conn.frame_left -= take;
            at += take;
            continue;
        }
        let Some(pos) = chunk[at..].iter().position(|b| *b == b'\n') else {
            conn.line.extend_from_slice(&chunk[at..]);
            return;
        };
        conn.line.extend_from_slice(&chunk[at..at + pos + 1]);
        at += pos + 1;
        let line = std::mem::take(&mut conn.line);
        on_line(conn, &line, config, begin, interval);
    }
}

/// Handles one complete received line for `conn`.
fn on_line(
    conn: &mut EventConn,
    line: &[u8],
    config: &LoadgenConfig,
    begin: Option<Instant>,
    interval: Duration,
) {
    let text = String::from_utf8_lossy(line);
    let trimmed = text.trim_end_matches(['\n', '\r']);
    if conn.stage == Stage::Banner {
        // The banner is not part of any response. An over-cap server
        // answers `err: busy` here instead.
        if trimmed.starts_with("err:") {
            conn.failed = true;
        } else {
            conn.stage = if config.hello.is_some() {
                Stage::Hello
            } else {
                Stage::Traffic
            };
        }
        return;
    }
    conn.response.extend_from_slice(line);
    if trimmed == "ok" {
        finish_response(conn, true, config, begin, interval);
    } else if trimmed.starts_with("err:") {
        finish_response(conn, false, config, begin, interval);
    } else if let Some(rest) = trimmed.strip_prefix("frame ") {
        // `frame <kind> <len>`: exactly `len` raw bytes follow (they may
        // contain `\n`, which is why the parser switches modes here).
        match rest.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
            Some(len) => conn.frame_left = len,
            None => conn.failed = true,
        }
    }
}

/// One response completed (its terminator arrived): classify, time, and
/// advance the session.
fn finish_response(
    conn: &mut EventConn,
    terminated_ok: bool,
    config: &LoadgenConfig,
    begin: Option<Instant>,
    interval: Duration,
) {
    let response = std::mem::take(&mut conn.response);
    match conn.stage {
        Stage::Banner => unreachable!("banner lines never complete a response"),
        Stage::Hello => {
            if terminated_ok {
                conn.stage = Stage::Traffic;
            } else {
                conn.failed = true;
            }
        }
        Stage::Traffic => {
            if conn.completed < conn.sent {
                // A measured response. Responses return in send order
                // (one session, FIFO), so response k answers request k,
                // which was scheduled at phase + k·interval.
                let template = &config.requests[(conn.completed as usize) % config.requests.len()];
                let ok = match &template.expect {
                    Some(expect) => response == *expect,
                    None => terminated_ok,
                };
                if !ok {
                    conn.errors += 1;
                }
                if let Some(begin) = begin {
                    let scheduled = conn.phase + interval.mul_f64(conn.completed as f64);
                    conn.latencies
                        .push(begin.elapsed().saturating_sub(scheduled));
                }
                conn.completed += 1;
            } else {
                // The response beyond the sent count is the quit ack.
                conn.saw_quit_ack = terminated_ok;
                conn.finished = true;
            }
        }
    }
}

/// Drains every readable byte into the parser; EOF or a transport error
/// ends the connection.
fn read_ready(conn: &mut EventConn, config: &LoadgenConfig, begin: Option<Instant>) {
    let mut buf = [0u8; 4096];
    while !conn.failed && !conn.finished {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // EOF before the quit ack is a premature hangup.
                conn.failed = !conn.saw_quit_ack;
                conn.finished = true;
                return;
            }
            Ok(n) => feed(conn, &buf[..n], config, begin),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.failed = true;
                return;
            }
        }
    }
}

/// The multiplexed campaign: all connections on one readiness loop.
fn run_events(config: &LoadgenConfig, mut poller: Poller) -> std::io::Result<LoadgenReport> {
    let started = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / config.rate);
    let mut outcomes: Vec<ConnOutcome> = Vec::new();
    let mut conns: Vec<EventConn> = Vec::new();

    // Connect phase. Stagger connection phases uniformly across the
    // whole fleet so the aggregate arrival process is smooth: with N
    // connections the wire sees one request every interval/N, never an
    // N-wide burst.
    for i in 0..config.connections {
        let phase = interval.mul_f64(i as f64 / config.connections.max(1) as f64);
        let Ok(stream) = TcpStream::connect_timeout(&config.addr, config.connect_timeout) else {
            outcomes.push(ConnOutcome {
                sent: 0,
                completed: 0,
                errors: 0,
                dropped: true,
                latencies: Vec::new(),
            });
            continue;
        };
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            outcomes.push(ConnOutcome {
                sent: 0,
                completed: 0,
                errors: 0,
                dropped: true,
                latencies: Vec::new(),
            });
            continue;
        }
        let mut out = Vec::new();
        if let Some(token) = &config.hello {
            out.extend_from_slice(format!("hello {token}\n").as_bytes());
        }
        conns.push(EventConn {
            stream,
            phase,
            stage: Stage::Banner,
            out,
            out_at: 0,
            want_write: false,
            line: Vec::new(),
            response: Vec::new(),
            frame_left: 0,
            sent: 0,
            completed: 0,
            errors: 0,
            latencies: Vec::new(),
            quit_sent: false,
            saw_quit_ack: false,
            failed: false,
            finished: false,
            done: false,
        });
    }
    for (token, conn) in conns.iter_mut().enumerate() {
        if poller
            .add(raw_fd(&conn.stream), token as u64, Interest::READ)
            .is_err()
        {
            conn.failed = true;
            conn.done = true;
            continue;
        }
        flush_conn(conn);
        sync_interest(&mut poller, token as u64, conn);
    }

    // Handshake phase (the barrier equivalent): traffic starts only once
    // every surviving connection has its banner (and hello ack).
    let mut events: Vec<PollEvent> = Vec::new();
    let handshake_deadline = Instant::now() + config.connect_timeout;
    while conns
        .iter()
        .any(|c| !c.done && (c.failed || c.stage != Stage::Traffic))
    {
        for conn in conns.iter_mut().filter(|c| !c.done && c.failed) {
            close_conn(&mut poller, conn);
        }
        if conns
            .iter()
            .all(|c| c.done || c.stage == Stage::Traffic && !c.failed)
        {
            break;
        }
        if Instant::now() >= handshake_deadline {
            for conn in conns.iter_mut().filter(|c| c.stage != Stage::Traffic) {
                conn.failed = true;
                close_conn(&mut poller, conn);
            }
            break;
        }
        poller.wait(&mut events, Duration::from_millis(10))?;
        for event in &events {
            let conn = &mut conns[event.token as usize];
            if conn.done {
                continue;
            }
            if event.readable {
                read_ready(conn, config, None);
            }
            if event.writable && !conn.failed {
                flush_conn(conn);
            }
            sync_interest(&mut poller, event.token, conn);
        }
    }

    // Traffic phase: open-loop sends on each connection's schedule, reads
    // as readiness arrives, quit + drain after the duration, and a hard
    // cap so a wedged server cannot hang the generator forever.
    let begin = Instant::now();
    let drain_cap = config.duration + config.connect_timeout + Duration::from_secs(10);
    while !conns.iter().all(|c| c.done) {
        let now = begin.elapsed();
        if now >= drain_cap {
            for conn in conns.iter_mut().filter(|c| !c.done) {
                conn.failed = true;
                close_conn(&mut poller, conn);
            }
            break;
        }
        let mut next_wake = drain_cap;
        for (token, conn) in conns.iter_mut().enumerate() {
            if conn.done {
                continue;
            }
            if conn.failed || conn.finished {
                close_conn(&mut poller, conn);
                continue;
            }
            if !conn.quit_sent {
                if now >= config.duration {
                    conn.out.extend_from_slice(b"quit\n");
                    conn.quit_sent = true;
                } else {
                    while conn.phase + interval.mul_f64(conn.sent as f64) <= now {
                        let template =
                            &config.requests[(conn.sent as usize) % config.requests.len()];
                        conn.out
                            .extend_from_slice(format!("{}\n", template.line).as_bytes());
                        conn.sent += 1;
                    }
                    let due = conn.phase + interval.mul_f64(conn.sent as f64);
                    next_wake = next_wake.min(due.min(config.duration));
                }
                if conn.out_at < conn.out.len() {
                    flush_conn(conn);
                }
                sync_interest(&mut poller, token as u64, conn);
                if conn.failed {
                    close_conn(&mut poller, conn);
                }
            }
        }
        if conns.iter().all(|c| c.done) {
            break;
        }
        let timeout = next_wake
            .checked_sub(begin.elapsed())
            .filter(|d| !d.is_zero())
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(100));
        poller.wait(&mut events, timeout)?;
        for event in &events {
            let conn = &mut conns[event.token as usize];
            if conn.done {
                continue;
            }
            if event.readable {
                read_ready(conn, config, Some(begin));
            }
            if event.writable && !conn.failed && !conn.finished {
                flush_conn(conn);
            }
            if conn.failed || conn.finished {
                close_conn(&mut poller, conn);
            } else {
                sync_interest(&mut poller, event.token, conn);
            }
        }
    }

    outcomes.extend(conns.iter().map(EventConn::outcome));
    Ok(assemble(config, outcomes, started.elapsed()))
}

/// One connection's whole life: connect, banner, optional handshake,
/// barrier, open-loop writer + response reader, drain.
fn drive_connection(config: &LoadgenConfig, index: usize, gate: &Barrier) -> ConnOutcome {
    let dropped = ConnOutcome {
        sent: 0,
        completed: 0,
        errors: 0,
        dropped: true,
        latencies: Vec::new(),
    };
    let Ok(stream) = TcpStream::connect_timeout(&config.addr, config.connect_timeout) else {
        gate.wait();
        return dropped;
    };
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        gate.wait();
        return dropped;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // Banner (one line). An over-cap server answers `err: busy` here.
    let mut banner = String::new();
    if reader.read_line(&mut banner).unwrap_or(0) == 0 || banner.starts_with("err:") {
        gate.wait();
        return dropped;
    }
    if let Some(token) = &config.hello {
        if writer
            .write_all(format!("hello {token}\n").as_bytes())
            .is_err()
        {
            gate.wait();
            return dropped;
        }
        match read_response(&mut reader) {
            Some((_, true)) => {}
            _ => {
                gate.wait();
                return dropped;
            }
        }
    }
    gate.wait();

    // Writer side runs on this thread's schedule; the reader side runs
    // concurrently so open-loop pipelining never blocks the cadence.
    // Both sides time against the same `begin` Instant: request k is
    // scheduled at `phase + k·interval`, and its latency is measured
    // from that slot (not from the actual, possibly late, write).
    let sent_count = AtomicU64::new(0);
    let interval = Duration::from_secs_f64(1.0 / config.rate);
    // Stagger connection phases uniformly across the whole fleet so the
    // aggregate arrival process is smooth: with N connections the wire
    // sees one request every interval/N, never an N-wide burst.
    let phase = interval.mul_f64(index as f64 / config.connections.max(1) as f64);
    let begin = Instant::now();
    std::thread::scope(|scope| {
        let sent_ref = &sent_count;
        let requests = &config.requests;
        let reader_handle =
            scope.spawn(move || read_loop(reader, requests, sent_ref, begin, phase, interval));
        let mut sent: u64 = 0;
        loop {
            let due = begin + phase + interval.mul_f64(sent as f64);
            let now = Instant::now();
            if now < due {
                std::thread::sleep(due - now);
            }
            if begin.elapsed() >= config.duration {
                break;
            }
            let template = &config.requests[(sent as usize) % config.requests.len()];
            // Publish the new count *before* writing: a fast response
            // must never race past a stale counter and be mistaken for
            // the quit ack. (Overshoot on a failed write is harmless —
            // the connection is marked dropped below.)
            sent_count.store(sent + 1, Ordering::SeqCst);
            if writer
                .write_all(format!("{}\n", template.line).as_bytes())
                .is_err()
            {
                break;
            }
            sent += 1;
        }
        // Close the session; the reader drains to the `quit` ack (EOF).
        let quit_sent = writer.write_all(b"quit\n").is_ok();
        let (completed, errors, latencies, saw_quit_ack) =
            reader_handle.join().unwrap_or((0, 0, Vec::new(), false));
        let dropped = !quit_sent || !saw_quit_ack || completed < sent;
        ConnOutcome {
            sent,
            completed,
            errors,
            dropped,
            latencies,
        }
    })
}

/// Reads responses until EOF, timing each against its scheduled send
/// slot. Returns `(completed, errors, latencies, saw_final_ok)` where
/// the final `ok` is the `quit` acknowledgement.
fn read_loop(
    mut reader: BufReader<TcpStream>,
    requests: &[RequestTemplate],
    sent: &AtomicU64,
    begin: Instant,
    phase: Duration,
    interval: Duration,
) -> (u64, u64, Vec<Duration>, bool) {
    let mut completed: u64 = 0;
    let mut errors: u64 = 0;
    let mut latencies = Vec::new();
    let mut last_ok = false;
    while let Some((response, terminated_ok)) = read_response(&mut reader) {
        let now = begin.elapsed();
        let in_flight = sent.load(Ordering::SeqCst);
        if completed < in_flight {
            // A measured response (not the quit ack). Responses return
            // in send order (one session, FIFO), so response number k
            // answers request k, which was scheduled at phase + k·dt.
            let template = &requests[(completed as usize) % requests.len()];
            let ok = match &template.expect {
                Some(expect) => response == *expect,
                None => terminated_ok,
            };
            if !ok {
                errors += 1;
            }
            let scheduled = phase + interval.mul_f64(completed as f64);
            latencies.push(now.saturating_sub(scheduled));
            completed += 1;
            last_ok = false;
        } else {
            last_ok = terminated_ok;
        }
    }
    (completed, errors, latencies, last_ok)
}

/// Reads one complete protocol response: payload lines, any announced
/// binary frame, and the `ok` / `err:` terminator. Returns the raw
/// response bytes plus whether the terminator was `ok` (the terminator
/// must be identified while reading lines — a binary frame's payload can
/// contain `\n` bytes, so scanning backwards from the end is unsound).
/// `None` on EOF or transport error mid-response.
fn read_response(reader: &mut BufReader<TcpStream>) -> Option<(Vec<u8>, bool)> {
    let mut response = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        response.extend_from_slice(line.as_bytes());
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed == "ok" {
            return Some((response, true));
        }
        if trimmed.starts_with("err:") {
            return Some((response, false));
        }
        // `frame <kind> <len>`: exactly `len` raw bytes follow.
        if let Some(rest) = trimmed.strip_prefix("frame ") {
            let len: usize = rest.split_whitespace().nth(1)?.parse().ok()?;
            let mut frame = vec![0u8; len];
            reader.read_exact(&mut frame).ok()?;
            response.extend_from_slice(&frame);
        }
    }
}
