//! The `cpistack` command-line tool: the paper's workflow (Fig. 1) for
//! users who have *real* performance-counter data.
//!
//! The library's simulator exists because we cannot ship a Pentium 4; a
//! downstream user with actual hardware does not need it — they need
//! exactly three steps: collect counters (perf, perfmon, pfmon …) into a
//! CSV, state the machine's five microarchitectural constants, and fit.
//! This module drives that path through the unified [`Workbench`]
//! pipeline — the same collect → fit → stacks → export stages the
//! examples, campaigns and tests use:
//!
//! ```text
//! cpistack fit   --counters runs.csv --width 4 --depth 14 --l2 19 --mem 169 --tlb 30
//! cpistack stack --counters runs.csv --width 4 --depth 14 --l2 19 --mem 169 --tlb 30
//! cpistack demo  # generates a demo CSV from the built-in simulator
//! cpistack serve # long-lived session: line protocol over stdin/stdout
//! cpistack serve --listen 127.0.0.1:7070 --state-dir /var/lib/cpistack
//!                # same protocol over TCP, models persisted across restarts
//! ```
//!
//! The CSV format is [`pmu::csv`]'s (header + one row per benchmark run);
//! `cpistack demo` writes a valid example to adapt from. Counter CSVs may
//! mix machines: the pipeline fits one model per machine column value,
//! all with the constants given on the command line.
//!
//! Every pipeline failure surfaces as a typed
//! [`PipelineError`](crate::PipelineError) naming the stage (collect →
//! fit → export) that broke; only argument parsing has its own
//! [`CliError::Usage`] variant.
//!
//! # The `serve` protocol and its two transports
//!
//! `cpistack serve` starts a [`CpiService`](crate::CpiService) session
//! speaking the line protocol implemented by
//! [`service::proto`](crate::service::proto) — one command per line in,
//! zero or more payload lines plus exactly one terminator (`ok` or
//! `err: <message>`) out; the session continues after errors. See the
//! [`proto`](crate::service::proto) module docs for the command set
//! (including `binstack`, the length-prefixed binary framing for bulk
//! stack streams).
//!
//! Without `--listen` the session runs over stdin/stdout — built for
//! scripting (`printf '…' | cpistack serve`) as much as for interactive
//! use. With `--listen <addr>` the same protocol is served over TCP:
//! the bound address is printed as `listening <addr>` (so `--listen
//! 127.0.0.1:0` scripts cleanly), every connection gets its own client
//! with per-connection state, idle connections are closed after
//! `--idle-timeout` seconds, and the in-band `shutdown` command stops the
//! whole server gracefully — connections drain, then the service exits.
//!
//! Flags: `--workers <N>` (worker shards), `--cache <N>` (model-cache
//! capacity, per tenant), `--quick` (cheap fit options, for smoke
//! tests), `--listen <addr>` (TCP front), `--state-dir <dir>` (persist
//! fitted models across restarts — see
//! [`service::persist`](crate::service::persist)),
//! `--auth <token-file>` (multi-tenant mode: sessions must open with
//! `hello <token>`, tokens minted by `cpistack token` — see
//! [`service::auth`](crate::service::auth)), `--idle-timeout <s>`
//! (0 = never) and `--max-conns <N>` (TCP limits).

use crate::model::workbench::Grouping;
use crate::model::{FitOptions, MicroarchParams};
use crate::service::auth::{self, AuthError, TokenRegistry};
use crate::service::cluster::{ClusterHarness, RouterConfig};
use crate::service::persist::PersistError;
use crate::service::poller::ServeBackend;
use crate::service::{proto, stream, CpiService, ServiceConfig, ServiceError};
use crate::{CsvSource, PipelineError, SimSource, Workbench};
use std::fmt;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Errors surfaced to the CLI user: either the arguments never parsed, or
/// the pipeline failed at a typed stage.
#[derive(Debug)]
pub enum CliError {
    /// Unknown subcommand or malformed flags.
    Usage(String),
    /// The pipeline failed; the payload names the stage and cause.
    Pipeline(PipelineError),
    /// Reading commands from / writing responses to the serve session's
    /// transport failed.
    Io(std::io::Error),
    /// The serve session's `--state-dir` could not be opened.
    State(PersistError),
    /// The `--auth` token file could not be loaded, or `cpistack token`
    /// could not mint into it.
    Auth(AuthError),
    /// The `bench --check` regression gate tripped.
    Bench(String),
    /// The `watch` stream's service rejected a batch or refit.
    Watch(ServiceError),
    /// The `loadgen` run saw protocol errors, dropped connections, or
    /// blew its `--budget-ms` latency budget.
    Loadgen(String),
    /// The `sweep` run's service rejected the grid or a fit failed.
    Sweep(ServiceError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "serve session i/o: {e}"),
            CliError::State(e) => write!(f, "serve state dir: {e}"),
            CliError::Auth(e) => write!(f, "auth: {e}"),
            CliError::Bench(msg) => write!(f, "bench regression gate: {msg}"),
            CliError::Watch(e) => write!(f, "watch stream: {e}"),
            CliError::Loadgen(msg) => write!(f, "loadgen gate: {msg}"),
            CliError::Sweep(e) => write!(f, "sweep: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) | CliError::Bench(_) | CliError::Loadgen(_) => None,
            CliError::Pipeline(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::State(e) => Some(e),
            CliError::Auth(e) => Some(e),
            CliError::Watch(e) => Some(e),
            CliError::Sweep(e) => Some(e),
        }
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
cpistack — mechanistic-empirical CPI stacks from performance counters

USAGE:
  cpistack fit   --counters <csv> --width <D> --depth <c_fe> --l2 <c_L2> --mem <c_mem> --tlb <c_TLB>
  cpistack stack --counters <csv> --width <D> --depth <c_fe> --l2 <c_L2> --mem <c_mem> --tlb <c_TLB>
  cpistack demo  [--out <csv>]
  cpistack sweep [--base <machine>] [--suite <s>] [--rob v,v] [--mshr v,v]
                 [--dw v,v] [--pf v,v] [--uops <N>] [--seed <N>]
                 [--benchmarks <N>] [--component <name>] [--quick]
                 [--state-dir <dir>] [--workers <N>]
  cpistack serve [--workers <N>] [--cache <N>] [--quick] [--fit-threads <N>]
                 [--listen <addr>] [--state-dir <dir>] [--auth <token-file>]
                 [--idle-timeout <secs>] [--max-conns <N>] [--poll-interval <ms>]
                 [--engine <events|threads>]
  cpistack cluster --state-dir <dir> [--nodes <N>] [--replicas <N>]
                 [--listen <addr>] [--workers <N>] [--cache <N>] [--quick]
                 [--auth <token-file>] [--idle-timeout <secs>] [--max-conns <N>]
                 [--poll-interval <ms>] [--probe-interval <ms>]
  cpistack token --auth-file <token-file> --tenant <name>
  cpistack watch [--replay <csv>] [--machine <name>] [--suite <s|all>]
                 [--batch <N>] [--rounds <K>] [--interval-ms <M>]
                 [--jitter <seed>] [--record <csv>] [--quick]
                 [--uops <N>] [--seed <N>] [--benchmarks <N>]
  cpistack bench [--smoke] [--out <json>] [--uops <N>] [--seed <N>]
                 [--threads <N>] [--check <baseline.json>]
  cpistack loadgen --connect <addr> [--conns <N>] [--rate <R>]
                 [--duration-ms <D>] [--mix <text|bin|mixed>]
                 [--machine <name>] [--suite <s>] [--hello <token>]
                 [--budget-ms <X>]

SUBCOMMANDS:
  fit    infer the ten model parameters from the counter data, report
         per-benchmark prediction accuracy (one model per machine in the
         CSV, fitted with the constants above)
  stack  fit, then print one CPI stack per benchmark (and a CSV to stdout
         with --csv)
  demo   write an example counters CSV (generated by the built-in
         simulator's Core 2 preset) to adapt your own data from
  sweep  expand a design-space grid against a base preset (--rob/--mshr/
         --dw/--pf each take a comma-separated value list), simulate and
         fit every distinct variant once, and print the ranked table:
         per-variant mean CPI, the component of interest (--component,
         default llc_d), the CPI delta vs the base, and the Pareto front
         over (CPI, component). --state-dir persists the fitted models,
         so re-sweeping the same grid refits nothing; --benchmarks caps
         the suite for quick scans
  serve  start a long-lived CpiService session speaking a line protocol:
         register machines, ingest counter CSVs, and serve
         fits/stacks/deltas from a shared model cache (type `help` inside
         the session for the command set). Over stdin/stdout by default;
         --listen <addr> serves the same protocol on a TCP socket with
         concurrent connections, and --state-dir <dir> persists fitted
         models so a restarted server warms up without refitting;
         --fit-threads caps each regression's multi-start fan-out.
         --auth <token-file> makes the server multi-tenant: every
         session must open with `hello <token>`, and each tenant gets
         its own machine namespace, cache quota and state subdirectory;
         --poll-interval tunes the stop/idle polling tick in milliseconds;
         --engine picks the TCP accept/dispatch engine: `events` (the
         default readiness loop) or `threads` (one thread per connection,
         the pre-event-loop behaviour — useful for A/B load tests)
  cluster
         start a multi-node serving tier in one process: N backend serve
         nodes plus a router that speaks the identical client protocol,
         consistent-hashes (tenant, machine) keys across the nodes,
         replicates fitted-model snapshots to each key's ring successors
         (--replicas, default 1), and health-probes members so a dead
         node's tenants are served warm by survivors with zero re-fits.
         Prints one `node <name> <addr>` line per backend, then
         `listening <addr>` for the router. --state-dir is required —
         replication needs somewhere to land
  token  mint a session token for a tenant and append it to a token
         file (printed to stdout; pass the file to `serve --auth`)
  watch  pump live counter batches into a warm service and keep the model
         continuously refit: every batch is upserted, then served by the
         cheapest safe refit (cache hit, warm-start polish, or the full
         multi-start fan-out when the workload drifts or the periodic
         re-anchor is due), and the session closes with one
         reconciliation full refit. Batches come from --replay <csv>
         (deterministic replay of recorded counters) or, by default, the
         built-in simulator; --rounds replays the set K times and
         --jitter <seed> perturbs rounds after the first by ±1% to mimic
         run-to-run noise. --interval-ms paces the stream; --record
         appends every streamed batch to a CSV that replays byte-exact
         through --replay; --batch sets records per batch
  bench  time the paper campaign's cold collect (work-stealing pool vs
         strictly sequential, asserting byte-identical records), cold fit
         (parallel vs sequential, asserting byte-identical parameters and
         equal objective-evaluation counts) and warm serve, then write a
         machine-readable snapshot (default BENCH_10.json), including a
         cluster section (router-hop overhead vs direct warm serve) and a
         connection-scaling section (readiness-loop front vs the legacy
         thread-per-connection engine under loadgen traffic). --threads
         is one budget for the whole bench: the collect pool's worker
         count and each cold fit's multi-start fan-out cap (concurrent
         fits time-share it); --smoke runs reduced budgets for CI;
         --check <baseline> fails if cold-fit wall-clock regressed >25%
         (cold collect >75%, readiness p99 >100%: noisier surfaces get
         more slack) against a comparable baseline
  loadgen
         drive open-loop load at a running server (a `serve --listen`
         front or a `cluster` router): --conns concurrent connections ×
         --rate requests/second each of warm `stack`/`binstack` traffic
         for --duration-ms, then print completion counts, in-band error
         and dropped-connection tallies, and p50/p95/p99 latency. The
         target machine/suite (default core2/cpu2000) must already be
         registered and fitted on the server. --mix picks the traffic
         shape (default mixed), --hello authenticates multi-tenant
         servers, and --budget-ms makes the exit status a gate: nonzero
         if any error or drop occurred or p99 exceeded the budget

All subcommands drive the same fitting code path the library exposes:
counters from a pluggable source (CSV here, the simulator for `demo`),
Eq. 1-6 fitted by nonlinear regression, stacks out. One-shot subcommands
use the Workbench builder; `serve` keeps a CpiService warm so repeated
requests hit its model cache. Failures name the stage: collect -> fit ->
export.

The counters CSV uses the column set printed by `cpistack demo`; counts are
raw event totals for the measured region of each benchmark.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Fit and report accuracy.
    Fit(FitArgs),
    /// Fit and print stacks.
    Stack(FitArgs, bool),
    /// Write a demo CSV.
    Demo {
        /// Output path.
        out: String,
    },
    /// Run a design-space sweep and print the ranked table.
    Sweep(SweepCliArgs),
    /// Start a long-lived serve session (line protocol on stdin/stdout).
    Serve(ServeArgs),
    /// Start an in-process multi-node cluster (router + N serve nodes).
    Cluster(ClusterArgs),
    /// Mint a tenant session token into a token file.
    Token {
        /// The token file to append to (created if missing).
        auth_file: String,
        /// The tenant the token authenticates as.
        tenant: String,
    },
    /// Stream counter batches into a warm service with incremental refits.
    Watch(WatchArgs),
    /// Time the cold/warm paths and write a perf snapshot.
    Bench(BenchArgs),
    /// Drive open-loop load at a running server and report latency.
    Loadgen(LoadgenArgs),
}

/// Arguments for the `loadgen` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadgenArgs {
    /// Server address to drive (`host:port`).
    pub connect: String,
    /// Concurrent connections (`None` = 16).
    pub conns: Option<usize>,
    /// Requests per second per connection (`None` = 10).
    pub rate: Option<f64>,
    /// Traffic duration in milliseconds (`None` = 2000).
    pub duration_ms: Option<u64>,
    /// Traffic shape: `text`, `bin`, or `mixed` (`None` = mixed).
    pub mix: Option<String>,
    /// Machine to request stacks for (`None` = `core2`).
    pub machine: Option<String>,
    /// Suite to request stacks for (`None` = `cpu2000`).
    pub suite: Option<String>,
    /// Session token for multi-tenant servers.
    pub hello: Option<String>,
    /// p99 latency budget in milliseconds; exceeding it (or any error
    /// or drop) makes the exit status nonzero.
    pub budget_ms: Option<f64>,
}

/// Arguments for the `watch` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WatchArgs {
    /// Counters CSV to replay (`None` = generate batches with the
    /// built-in simulator).
    pub replay: Option<String>,
    /// Machine to stream into (`None` = `core2`; simulator batches use
    /// the machine's preset config).
    pub machine: Option<String>,
    /// Suite key to refit (`None` = `cpu2000`; `all` pools suites).
    pub suite: Option<String>,
    /// Records per streamed batch (`None` = the whole record set, one
    /// batch per round).
    pub batch: Option<usize>,
    /// Times the record set is replayed (`None` = 3).
    pub rounds: Option<usize>,
    /// Pause between batches in milliseconds (`None` = flat out).
    pub interval_ms: Option<u64>,
    /// Jitter seed: rounds after the first perturb every counter by ±1%
    /// deterministically (`None` = byte-exact rounds).
    pub jitter: Option<u64>,
    /// Append every streamed batch to this CSV (header written once), so
    /// the live session replays later via `--replay`.
    pub record: Option<String>,
    /// Use [`FitOptions::quick`] instead of the full-budget defaults.
    pub quick: bool,
    /// Simulator µop budget per benchmark run (`None` = 20000).
    pub uops: Option<u64>,
    /// Simulator campaign seed (`None` = 42).
    pub seed: Option<u64>,
    /// Benchmarks per suite in simulator batches (`None` = 12).
    pub benchmarks: Option<usize>,
}

/// Arguments for the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepCliArgs {
    /// Base preset the grid expands against (`None` = `core2`).
    pub base: Option<String>,
    /// Suite to sweep over (`None` = `cpu2000`).
    pub suite: Option<String>,
    /// Comma-separated ROB sizes.
    pub rob: Option<String>,
    /// Comma-separated MSHR counts.
    pub mshr: Option<String>,
    /// Comma-separated dispatch widths.
    pub dw: Option<String>,
    /// Comma-separated prefetch depths.
    pub pf: Option<String>,
    /// Simulator µop budget per benchmark run (`None` = 20000).
    pub uops: Option<u64>,
    /// Simulator campaign seed (`None` = 42).
    pub seed: Option<u64>,
    /// Benchmarks per suite (`None` = the whole suite).
    pub benchmarks: Option<usize>,
    /// Component of interest for the Pareto front (`None` = `llc_d`).
    pub component: Option<String>,
    /// Use [`FitOptions::quick`] instead of the full-budget defaults.
    pub quick: bool,
    /// Persist fitted variant models here; re-sweeps then refit nothing.
    pub state_dir: Option<String>,
    /// Worker-shard count (`None` = one per hardware thread).
    pub workers: Option<usize>,
}

/// Arguments for the `bench` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchArgs {
    /// Reduced budgets (CI mode).
    pub smoke: bool,
    /// Snapshot path (`None` = `BENCH_10.json`).
    pub out: Option<String>,
    /// µop budget override.
    pub uops: Option<u64>,
    /// Campaign seed override.
    pub seed: Option<u64>,
    /// Thread budget for the whole bench (`0` = auto) — collect pool
    /// workers, and each cold fit's multi-start fan-out cap.
    pub threads: Option<usize>,
    /// Baseline snapshot to gate cold-collect/cold-fit wall-clock against.
    pub check: Option<String>,
}

/// Arguments for the `serve` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeArgs {
    /// Worker-shard count (`None` = one per hardware thread).
    pub workers: Option<usize>,
    /// Model-cache capacity (`None` = the service default).
    pub cache: Option<usize>,
    /// Use [`FitOptions::quick`] instead of the full-budget defaults.
    pub quick: bool,
    /// Serve the protocol on this TCP address instead of stdin/stdout
    /// (`127.0.0.1:0` binds an ephemeral port, printed as `listening …`).
    pub listen: Option<String>,
    /// Persist fitted models under this directory and warm-load them on
    /// cache misses across restarts.
    pub state_dir: Option<String>,
    /// Close idle TCP connections after this many seconds (`0` = never;
    /// `None` = the transport default).
    pub idle_timeout: Option<u64>,
    /// Concurrent TCP connection cap (`None` = the transport default).
    pub max_conns: Option<usize>,
    /// Per-regression thread budget on the workers (`None` = each fit
    /// uses its options' budget, by default one thread per core).
    pub fit_threads: Option<usize>,
    /// Token file enabling multi-tenant auth: every session (stdio and
    /// TCP alike) must then `hello <token>` before serving commands, and
    /// all state is scoped to the resolved tenant. `None` = open server,
    /// implicit local tenant.
    pub auth: Option<String>,
    /// Stop/idle polling tick in milliseconds (`None` = the transport
    /// default, ~50 ms).
    pub poll_interval: Option<u64>,
    /// TCP accept/dispatch engine (`None` = the transport default,
    /// the readiness event loop).
    pub engine: Option<ServeBackend>,
}

/// Arguments for the `cluster` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterArgs {
    /// Root directory for per-node snapshot state (`<dir>/node-<i>`).
    /// Required: replication ships snapshots to successors' stores.
    pub state_dir: String,
    /// Backend node count (`None` = 3).
    pub nodes: Option<usize>,
    /// Ring successors each key's snapshots replicate to (`None` = 1).
    pub replicas: Option<usize>,
    /// The router's client-facing address (`None` = an ephemeral
    /// loopback port, printed as `listening …`).
    pub listen: Option<String>,
    /// Worker-shard count per node (`None` = the service default).
    pub workers: Option<usize>,
    /// Model-cache capacity per node (`None` = the harness default).
    pub cache: Option<usize>,
    /// Use [`FitOptions::quick`] on every node session.
    pub quick: bool,
    /// Token file gating every session behind `hello <token>` — the
    /// router forwards the handshake verbatim, so auth semantics are
    /// exactly a single node's.
    pub auth: Option<String>,
    /// Close idle client connections after this many seconds (`0` =
    /// never; `None` = the transport default).
    pub idle_timeout: Option<u64>,
    /// Concurrent client connection cap (`None` = the transport default).
    pub max_conns: Option<usize>,
    /// Stop/idle polling tick in milliseconds (`None` = ~50 ms).
    pub poll_interval: Option<u64>,
    /// Health-probe period in milliseconds (`0` = no probing; `None` =
    /// the router default, ~1 s).
    pub probe_interval: Option<u64>,
}

/// Arguments shared by `fit` and `stack`.
#[derive(Debug, Clone, PartialEq)]
pub struct FitArgs {
    /// Path to the counters CSV.
    pub counters: String,
    /// The five microarchitectural constants.
    pub arch: MicroarchParams,
}

/// Parses `argv[1..]` into a [`Command`].
///
/// # Errors
///
/// Returns [`CliError::Usage`] on unknown subcommands, missing or
/// malformed flags.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let sub = args
        .first()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
    let flags = parse_flags(&args[1..])?;
    let get = |name: &str| -> Result<&str, CliError> {
        flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| CliError::Usage(format!("missing --{name}")))
    };
    let get_num = |name: &str| -> Result<f64, CliError> {
        get(name)?
            .parse()
            .map_err(|_| CliError::Usage(format!("--{name} must be a number")))
    };
    match sub.as_str() {
        "fit" | "stack" => {
            let fit_args = FitArgs {
                counters: get("counters")?.to_owned(),
                arch: MicroarchParams::new(
                    get_num("width")?,
                    get_num("depth")?,
                    get_num("l2")?,
                    get_num("mem")?,
                    get_num("tlb")?,
                ),
            };
            if sub == "fit" {
                Ok(Command::Fit(fit_args))
            } else {
                let csv = flags.iter().any(|(k, _)| k == "csv");
                Ok(Command::Stack(fit_args, csv))
            }
        }
        "demo" => Ok(Command::Demo {
            out: flags
                .iter()
                .find(|(k, _)| k == "out")
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "demo_counters.csv".into()),
        }),
        "sweep" => Ok(Command::Sweep(SweepCliArgs {
            base: flag_text(&flags, "base"),
            suite: flag_text(&flags, "suite"),
            rob: flag_text(&flags, "rob"),
            mshr: flag_text(&flags, "mshr"),
            dw: flag_text(&flags, "dw"),
            pf: flag_text(&flags, "pf"),
            uops: flag_count(&flags, "uops")?,
            seed: flag_count(&flags, "seed")?,
            benchmarks: flag_count(&flags, "benchmarks")?,
            component: flag_text(&flags, "component"),
            quick: flags.iter().any(|(k, _)| k == "quick"),
            state_dir: flag_text(&flags, "state-dir"),
            workers: flag_count(&flags, "workers")?,
        })),
        "serve" => Ok(Command::Serve(ServeArgs {
            workers: flag_count(&flags, "workers")?,
            cache: flag_count(&flags, "cache")?,
            quick: flags.iter().any(|(k, _)| k == "quick"),
            listen: flag_text(&flags, "listen"),
            state_dir: flag_text(&flags, "state-dir"),
            idle_timeout: flag_count(&flags, "idle-timeout")?,
            max_conns: flag_count(&flags, "max-conns")?,
            fit_threads: flag_count(&flags, "fit-threads")?,
            auth: flag_text(&flags, "auth"),
            poll_interval: flag_count(&flags, "poll-interval")?,
            engine: flag_engine(&flags)?,
        })),
        "cluster" => Ok(Command::Cluster(ClusterArgs {
            state_dir: get("state-dir")?.to_owned(),
            nodes: flag_count(&flags, "nodes")?,
            replicas: flag_count(&flags, "replicas")?,
            listen: flag_text(&flags, "listen"),
            workers: flag_count(&flags, "workers")?,
            cache: flag_count(&flags, "cache")?,
            quick: flags.iter().any(|(k, _)| k == "quick"),
            auth: flag_text(&flags, "auth"),
            idle_timeout: flag_count(&flags, "idle-timeout")?,
            max_conns: flag_count(&flags, "max-conns")?,
            poll_interval: flag_count(&flags, "poll-interval")?,
            probe_interval: flag_count(&flags, "probe-interval")?,
        })),
        "token" => Ok(Command::Token {
            auth_file: get("auth-file")?.to_owned(),
            tenant: get("tenant")?.to_owned(),
        }),
        "watch" => Ok(Command::Watch(WatchArgs {
            replay: flag_text(&flags, "replay"),
            machine: flag_text(&flags, "machine"),
            suite: flag_text(&flags, "suite"),
            batch: flag_count(&flags, "batch")?,
            rounds: flag_count(&flags, "rounds")?,
            interval_ms: flag_count(&flags, "interval-ms")?,
            jitter: flag_count(&flags, "jitter")?,
            record: flag_text(&flags, "record"),
            quick: flags.iter().any(|(k, _)| k == "quick"),
            uops: flag_count(&flags, "uops")?,
            seed: flag_count(&flags, "seed")?,
            benchmarks: flag_count(&flags, "benchmarks")?,
        })),
        "bench" => Ok(Command::Bench(BenchArgs {
            smoke: flags.iter().any(|(k, _)| k == "smoke"),
            out: flag_text(&flags, "out"),
            uops: flag_count(&flags, "uops")?,
            seed: flag_count(&flags, "seed")?,
            threads: flag_count(&flags, "threads")?,
            check: flag_text(&flags, "check"),
        })),
        "loadgen" => Ok(Command::Loadgen(LoadgenArgs {
            connect: get("connect")?.to_owned(),
            conns: flag_count(&flags, "conns")?,
            rate: flag_float(&flags, "rate")?,
            duration_ms: flag_count(&flags, "duration-ms")?,
            mix: flag_text(&flags, "mix"),
            machine: flag_text(&flags, "machine"),
            suite: flag_text(&flags, "suite"),
            hello: flag_text(&flags, "hello"),
            budget_ms: flag_float(&flags, "budget-ms")?,
        })),
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// An optional `--name <value>` flag's text.
fn flag_text(flags: &[(String, String)], name: &str) -> Option<String> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

/// The optional `--engine <events|threads>` flag as a [`ServeBackend`].
fn flag_engine(flags: &[(String, String)]) -> Result<Option<ServeBackend>, CliError> {
    match flag_text(flags, "engine").as_deref() {
        None => Ok(None),
        Some("events") => Ok(Some(ServeBackend::Events)),
        Some("threads") => Ok(Some(ServeBackend::Threads)),
        Some(other) => Err(CliError::Usage(format!(
            "--engine must be `events` or `threads`, got `{other}`"
        ))),
    }
}

/// An optional `--name <value>` flag parsed as an unsigned count.
fn flag_count<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
) -> Result<Option<T>, CliError> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("--{name} must be a count")))
        })
        .transpose()
}

/// An optional `--name <value>` flag parsed as a float.
fn flag_float(flags: &[(String, String)], name: &str) -> Result<Option<f64>, CliError> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("--{name} must be a number")))
        })
        .transpose()
}

/// Splits `--key value` and bare `--flag` pairs.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, CliError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| CliError::Usage(format!("expected a --flag, got `{arg}`")))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            out.push((key.to_owned(), args[i + 1].clone()));
            i += 2;
        } else {
            out.push((key.to_owned(), String::new()));
            i += 1;
        }
    }
    Ok(out)
}

/// Executes a parsed command, writing human output to the returned string.
///
/// # Errors
///
/// Propagates pipeline failures (collect → fit → export) as
/// [`CliError::Pipeline`].
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Fit(args) => {
            let fitted = fit_pipeline(args)?;
            let mut out = String::new();
            for group in fitted.groups() {
                if fitted.groups().len() > 1 {
                    out.push_str(&format!("== machine {} ==\n", group.machine.name()));
                }
                out.push_str(&format!("fitted model: {}\n\n", group.model));
                let preds = crate::model::eval::evaluate_model(&group.model, &group.records);
                let summary = crate::model::eval::summarize(&preds);
                out.push_str(&format!("accuracy: {summary}\n"));
                for p in &preds {
                    out.push_str(&format!(
                        "  {:<28} measured {:>7.3}  predicted {:>7.3}  ({:>5.1}%)\n",
                        p.benchmark,
                        p.measured,
                        p.predicted,
                        p.error() * 100.0
                    ));
                }
            }
            Ok(out)
        }
        Command::Stack(args, as_csv) => {
            let fitted = fit_pipeline(args)?;
            if *as_csv {
                Ok(fitted.stacks_csv())
            } else {
                let mut out = String::new();
                for group in fitted.groups() {
                    if fitted.groups().len() > 1 {
                        out.push_str(&format!("== machine {} ==\n", group.machine.name()));
                    }
                    for (benchmark, stack) in group.stacks() {
                        out.push_str(&format!("{benchmark:<28} {stack}\n"));
                    }
                }
                Ok(out)
            }
        }
        Command::Demo { out } => {
            let machine = crate::sim::machine::MachineConfig::core2();
            let suite: Vec<_> = crate::workloads::suites::cpu2000()
                .into_iter()
                .take(16)
                .collect();
            Workbench::new()
                .machine(machine)
                .source(SimSource::new().suite(suite).uops(100_000).seed(42))
                .collect()
                .map_err(CliError::from)?
                .export_to(out)
                .map_err(CliError::from)?;
            Ok(format!(
                "wrote {out}: 16 demo benchmark runs (Core 2 preset).\n\
                 Fit them with:\n  cpistack fit --counters {out} \
                 --width 4 --depth 14 --l2 19 --mem 169 --tlb 30\n"
            ))
        }
        Command::Serve(_) => Err(CliError::Usage(
            "serve reads stdin interactively — dispatch it to `cli::serve(...)` \
             instead of `cli::run(...)`"
                .into(),
        )),
        Command::Cluster(_) => Err(CliError::Usage(
            "cluster runs a foreground serving tier — dispatch it to \
             `cli::cluster(...)` instead of `cli::run(...)`"
                .into(),
        )),
        Command::Token { auth_file, tenant } => {
            let token = auth::issue_token(auth_file, tenant).map_err(CliError::Auth)?;
            // Stdout carries the bare token so scripts can capture it:
            // `TOKEN=$(cpistack token --auth-file f --tenant a)`.
            Ok(format!("{token}\n"))
        }
        Command::Watch(_) => Err(CliError::Usage(
            "watch streams progress for its whole session — dispatch it to \
             `cli::watch(...)` instead of `cli::run(...)`"
                .into(),
        )),
        Command::Sweep(args) => run_sweep_command(args),
        Command::Bench(args) => run_bench_command(args),
        Command::Loadgen(args) => run_loadgen_command(args),
    }
}

/// Runs the `sweep` subcommand: build the [`SweepSpec`] from the flags,
/// drive it through a private warm service, and print the ranked table.
///
/// [`SweepSpec`]: crate::service::sweep::SweepSpec
fn run_sweep_command(args: &SweepCliArgs) -> Result<String, CliError> {
    use crate::service::sweep::{SweepGrid, SweepSpec};
    let usage = |detail: String| CliError::Usage(detail);
    let base: pmu::MachineId = args
        .base
        .as_deref()
        .unwrap_or("core2")
        .parse()
        .map_err(|e| usage(format!("--base: {e}")))?;
    let suite: pmu::Suite = args
        .suite
        .as_deref()
        .unwrap_or("cpu2000")
        .parse()
        .map_err(|e| usage(format!("--suite: {e}")))?;
    let mut grid = SweepGrid::new();
    for (axis, values) in [
        ("rob", &args.rob),
        ("mshr", &args.mshr),
        ("dw", &args.dw),
        ("pf", &args.pf),
    ] {
        if let Some(values) = values {
            grid.parse_arg(&format!("{axis}={values}"))
                .map_err(|e| usage(format!("--{axis}: {e}")))?;
        }
    }
    let mut spec = SweepSpec::new(base, grid, suite);
    if args.quick {
        spec.options = FitOptions::quick();
    }
    if let Some(uops) = args.uops {
        spec.uops = uops;
    }
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    spec.limit = args.benchmarks;
    if let Some(component) = &args.component {
        spec.component = component
            .parse()
            .map_err(|e| usage(format!("--component: {e}")))?;
    }

    let mut config = ServiceConfig::new();
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(dir) = &args.state_dir {
        config = config.with_state_dir(dir);
    }
    let service = CpiService::start(config);
    let summary = service.client().sweep(spec).map_err(CliError::Sweep);
    service.shutdown();
    let summary = summary?;

    let mut out = format!(
        "sweep {} over {}: {} variants, simulated {} configs / {} runs\n",
        summary.base.name(),
        summary.suite.name(),
        summary.results.len(),
        summary.simulated_configs,
        summary.simulated_runs,
    );
    out.push_str(&format!(
        "{:<4} {:<28} {:>8} {:>9} {:>8}  {}\n",
        "rank", "variant", "cpi", summary.component, "Δcpi", "front"
    ));
    let ranked = summary.ranked();
    for (rank, result) in ranked.iter().enumerate() {
        let front = if summary.pareto.contains(&result.id) {
            "*"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<4} {:<28} {:>8.4} {:>9.4} {:>+8.4}  {}\n",
            rank + 1,
            result.id.name(),
            result.cpi,
            result.component,
            result.delta.overall.total(),
            front
        ));
    }
    let front: Vec<&str> = summary.pareto.iter().map(|id| id.name()).collect();
    out.push_str(&format!("pareto front: {}\n", front.join(" ")));
    Ok(out)
}

/// Runs the `loadgen` subcommand: resolve the target, build the request
/// mix, drive the open-loop campaign, and gate the exit status.
fn run_loadgen_command(args: &LoadgenArgs) -> Result<String, CliError> {
    use std::net::ToSocketAddrs as _;
    let addr = args
        .connect
        .to_socket_addrs()
        .map_err(|e| CliError::Usage(format!("--connect `{}`: {e}", args.connect)))?
        .next()
        .ok_or_else(|| CliError::Usage(format!("--connect `{}` resolved nowhere", args.connect)))?;
    let machine = args.machine.as_deref().unwrap_or("core2");
    let suite = args.suite.as_deref().unwrap_or("cpu2000");
    let stack = crate::loadgen::RequestTemplate::new(format!("stack {machine} {suite}"));
    let binstack = crate::loadgen::RequestTemplate::new(format!("binstack {machine} {suite}"));
    let requests = match args.mix.as_deref().unwrap_or("mixed") {
        "text" => vec![stack],
        "bin" => vec![binstack],
        "mixed" => vec![stack, binstack],
        other => {
            return Err(CliError::Usage(format!(
                "--mix must be text, bin or mixed (got `{other}`)"
            )))
        }
    };
    let mut config = crate::loadgen::LoadgenConfig::new(addr, machine, suite)
        .with_requests(requests)
        .with_connections(args.conns.unwrap_or(16))
        .with_rate(args.rate.unwrap_or(10.0))
        .with_duration(std::time::Duration::from_millis(
            args.duration_ms.unwrap_or(2000),
        ));
    if let Some(token) = &args.hello {
        config = config.with_hello(token.clone());
    }
    let report = crate::loadgen::run(&config)?;
    let mut text = report.summary();
    text.push('\n');
    let p99_ms = report.p99.as_secs_f64() * 1e3;
    if report.errors > 0 || report.dropped > 0 {
        return Err(CliError::Loadgen(format!(
            "{} in-band errors, {} dropped connections (want zero)\n{text}",
            report.errors, report.dropped
        )));
    }
    if let Some(budget) = args.budget_ms {
        if p99_ms > budget {
            return Err(CliError::Loadgen(format!(
                "p99 {p99_ms:.3} ms exceeds budget {budget:.3} ms\n{text}"
            )));
        }
        text.push_str(&format!(
            "gate: p99 {p99_ms:.3} ms within budget {budget:.3} ms\n"
        ));
    }
    Ok(text)
}

/// Runs the `watch` subcommand: build a [`LiveSource`](pmu::live) from
/// the arguments (a recorded-CSV replay, or simulator batches), pump it
/// into a fresh warm [`CpiService`] via [`stream::pump`], and print one
/// progress line per batch plus a closing summary.
///
/// # Errors
///
/// [`CliError::Pipeline`] when `--replay` cannot be read or `--record`
/// cannot be written, [`CliError::Watch`] when the service rejects a
/// batch or refit, [`CliError::Usage`] on bad machine/suite words.
pub fn watch(args: &WatchArgs, mut output: impl Write) -> Result<(), CliError> {
    use pmu::live::{LiveSource as _, ReplaySource};
    use std::str::FromStr as _;

    let machine = pmu::MachineId::from_str(args.machine.as_deref().unwrap_or("core2"))
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let suite_word = args.suite.as_deref().unwrap_or("cpu2000");
    let suite = if suite_word == "all" {
        None
    } else {
        Some(pmu::Suite::from_str(suite_word).map_err(|e| CliError::Usage(e.to_string()))?)
    };
    let config = crate::sim::machine::MachineConfig::preset(machine);
    let records = if let Some(path) = &args.replay {
        let source = CsvSource::from_path(path).map_err(PipelineError::from)?;
        let records: Vec<_> = source
            .records()
            .iter()
            .filter(|r| r.machine() == machine)
            .cloned()
            .collect();
        if records.is_empty() {
            return Err(CliError::Usage(format!(
                "`{path}` has no records for machine `{}`",
                machine.name()
            )));
        }
        records
    } else {
        let take = args.benchmarks.unwrap_or(12);
        let mut sim = SimSource::new()
            .uops(args.uops.unwrap_or(20_000))
            .seed(args.seed.unwrap_or(42));
        // `all` pools both paper suites under one key; a concrete suite
        // streams only its own benchmarks.
        for profiles in [
            crate::workloads::suites::cpu2000(),
            crate::workloads::suites::cpu2006(),
        ] {
            if suite.is_none() || profiles.first().map(|p| p.suite) == suite {
                sim = sim.suite(profiles.into_iter().take(take).collect());
            }
        }
        sim.collect_config(&config)
    };
    let batch = args.batch.unwrap_or(records.len().max(1));
    let mut source = ReplaySource::new(records)
        .rounds(args.rounds.unwrap_or(3))
        .batch_size(batch);
    if let Some(seed) = args.jitter {
        source = source.jitter(seed);
    }
    let options = if args.quick {
        FitOptions::quick()
    } else {
        FitOptions::default()
    };
    let key = crate::service::ModelKey::new(machine, suite, options);
    let service = CpiService::start(ServiceConfig::new());
    let client = service.client();
    client
        .register(crate::workbench::MachineSpec::from(&config))
        .map_err(CliError::Watch)?;
    let mut recorder = match &args.record {
        Some(path) => {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|error| {
                    CliError::Pipeline(PipelineError::Export {
                        path: path.into(),
                        error,
                    })
                })?;
            let need_header = std::fs::metadata(path)
                .map(|m| m.len() == 0)
                .unwrap_or(true);
            Some((file, need_header, path.clone()))
        }
        None => None,
    };
    writeln!(
        output,
        "watching {} {} via {}",
        machine.name(),
        suite.map_or("all", pmu::Suite::name),
        source.describe()
    )?;
    let opts = stream::PumpOptions::default().with_interval(std::time::Duration::from_millis(
        args.interval_ms.unwrap_or(0),
    ));
    // The callback cannot abort the pump, so the first I/O failure is
    // parked and re-raised after the stream drains.
    let mut io_error: Option<std::io::Error> = None;
    let summary = stream::pump(&client, &key, &mut source, &opts, |batch, rows| {
        if io_error.is_some() {
            return;
        }
        let mut emit = |output: &mut dyn Write| -> std::io::Result<()> {
            match batch.mode {
                None => writeln!(
                    output,
                    "batch {} records {} generation {} refit deferred (store too small)",
                    batch.batch, batch.records, batch.generation,
                )?,
                Some(mode) if batch.records == 0 => writeln!(
                    output,
                    "reconcile refit {} {:.2} ms objective {:.6}",
                    mode, batch.millis, batch.objective
                )?,
                Some(mode) => writeln!(
                    output,
                    "batch {} records {} generation {} refit {} {:.2} ms objective {:.6}",
                    batch.batch,
                    batch.records,
                    batch.generation,
                    mode,
                    batch.millis,
                    batch.objective
                )?,
            }
            if let Some((file, need_header, _)) = recorder.as_mut() {
                if !rows.is_empty() {
                    if *need_header {
                        writeln!(file, "{}", pmu::csv::header())?;
                        *need_header = false;
                    }
                    file.write_all(pmu::csv::to_csv_rows(rows).as_bytes())?;
                }
            }
            Ok(())
        };
        if let Err(e) = emit(&mut output) {
            io_error = Some(e);
        }
    })
    .map_err(CliError::Watch)?;
    if let Some(e) = io_error {
        return Err(CliError::Io(e));
    }
    writeln!(
        output,
        "watched {} batches, {} records: refits full {} incremental {} cached {}{}",
        summary.batches,
        summary.records,
        summary.full_refits,
        summary.incremental_refits,
        summary.cached,
        if summary.reconciled {
            ", reconciled"
        } else {
            ""
        }
    )?;
    if let Some((file, _, path)) = recorder.as_mut() {
        file.flush()?;
        writeln!(output, "recorded stream appended to {path}")?;
    }
    service.shutdown();
    Ok(())
}

/// The `bench` subcommand: run the perf harness, write the snapshot,
/// optionally gate against a committed baseline.
fn run_bench_command(args: &BenchArgs) -> Result<String, CliError> {
    let mut config = if args.smoke {
        crate::perf::BenchConfig::smoke()
    } else {
        crate::perf::BenchConfig::full()
    };
    if let Some(uops) = args.uops {
        config.uops = uops;
    }
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if let Some(threads) = args.threads {
        config.threads = threads;
    }
    let report = crate::perf::run_bench(config);
    let out = args.out.clone().unwrap_or_else(|| "BENCH_10.json".into());
    std::fs::write(&out, report.to_json()).map_err(|error| {
        CliError::Pipeline(PipelineError::Export {
            path: out.clone().into(),
            error,
        })
    })?;
    let mut text = report.summary();
    text.push_str(&format!("snapshot written to {out}\n"));
    if let Some(baseline_path) = &args.check {
        let baseline = std::fs::read_to_string(baseline_path).map_err(|error| {
            CliError::Bench(format!(
                "reading baseline `{baseline_path}` failed: {error}"
            ))
        })?;
        match crate::perf::check_against(&report, &baseline, 0.25) {
            Ok(note) => text.push_str(&format!("check: {note}\n")),
            Err(msg) => return Err(CliError::Bench(msg)),
        }
    }
    Ok(text)
}

/// Runs a `serve` session over the front the arguments select.
///
/// Without `--listen`: reads line-protocol commands from `input` and
/// writes responses to `output` until `quit`, `shutdown` or end-of-input
/// (the [`proto::run_session`] stdio front).
///
/// With `--listen <addr>`: binds a [`std::net::TcpListener`], announces
/// the bound address on `output` as `listening <addr>`, and serves
/// concurrent connections until a client sends `shutdown` — `input` is
/// not read. Either way the [`CpiService`] lives for the whole session,
/// so every fit after the first for a `(machine, suite, options)` key is
/// a cache hit — and with `--state-dir`, fits survive restarts too.
///
/// # Errors
///
/// [`CliError::Io`] when the transport fails, [`CliError::State`] when
/// the state dir cannot be opened; protocol-level problems are reported
/// in-band as `err: …` lines and never abort the session.
pub fn serve(
    args: &ServeArgs,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<(), CliError> {
    let mut config = ServiceConfig::new();
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(cache) = args.cache {
        config = config.with_cache_capacity(cache);
    }
    if let Some(dir) = &args.state_dir {
        config = config.with_state_dir(dir);
    }
    if let Some(threads) = args.fit_threads {
        config = config.with_fit_threads(threads);
    }
    let options = if args.quick {
        FitOptions::quick()
    } else {
        FitOptions::default()
    };
    let registry = args
        .auth
        .as_ref()
        .map(|path| TokenRegistry::load(path).map(Arc::new))
        .transpose()
        .map_err(CliError::Auth)?;
    let service = CpiService::try_start(config.clone()).map_err(CliError::State)?;
    let client = service.client();
    // With --auth, BOTH fronts gate every session behind `hello <token>`
    // — the stdio front is only implicitly the local tenant on an open
    // server.
    let spec = match registry {
        Some(registry) => proto::SessionSpec::with_auth(client, options, registry),
        None => proto::SessionSpec::open(client, options),
    };
    let banner = proto::banner(&config, args.quick);
    if let Some(addr) = &args.listen {
        let mut tcp = proto::TcpServerConfig::new(banner);
        if let Some(secs) = args.idle_timeout {
            tcp = tcp.with_idle_timeout((secs > 0).then(|| std::time::Duration::from_secs(secs)));
        }
        if let Some(max) = args.max_conns {
            tcp = tcp.with_max_connections(max);
        }
        if let Some(ms) = args.poll_interval {
            tcp = tcp.with_poll_interval(std::time::Duration::from_millis(ms));
        }
        if let Some(engine) = args.engine {
            tcp = tcp.with_backend(engine);
        }
        let listener = std::net::TcpListener::bind(addr.as_str())?;
        let server = proto::serve_tcp(listener, spec, tcp)?;
        writeln!(output, "listening {}", server.local_addr())?;
        output.flush()?;
        // Until a connection issues `shutdown` (or the process is
        // signalled); connections drain before wait() returns.
        server.wait();
    } else {
        writeln!(output, "{banner}")?;
        proto::run_session(&mut spec.session(), input, output)?;
    }
    service.shutdown();
    Ok(())
}

/// Runs the `cluster` subcommand in the foreground: boots N serve nodes
/// and the router, announces each node as `node <name> <addr>` and the
/// router as `listening <addr>` on `output`, then blocks until a client
/// sends `shutdown` through the router (which takes every node down
/// with it).
///
/// The router's banner is a node's banner — clients connecting to the
/// cluster see byte-for-byte what a single `cpistack serve` would say.
///
/// # Errors
///
/// [`CliError::Io`] on bind/spawn failures (including an unopenable
/// state dir, surfaced by the harness), [`CliError::Auth`] when the
/// token file cannot load.
pub fn cluster(args: &ClusterArgs, mut output: impl Write) -> Result<(), CliError> {
    let registry = args
        .auth
        .as_ref()
        .map(|path| TokenRegistry::load(path).map(Arc::new))
        .transpose()
        .map_err(CliError::Auth)?;
    // The banner reflects one node's shape (that is what each client
    // session talks to), so build the same ServiceConfig the harness
    // gives every node.
    let mut node_config = ServiceConfig::new();
    if let Some(workers) = args.workers {
        node_config = node_config.with_workers(workers);
    }
    if let Some(cache) = args.cache {
        node_config = node_config.with_cache_capacity(cache);
    }
    let mut router = RouterConfig::new(proto::banner(&node_config, args.quick));
    if let Some(replicas) = args.replicas {
        router = router.with_replicas(replicas);
    }
    if let Some(secs) = args.idle_timeout {
        router = router.with_idle_timeout((secs > 0).then(|| std::time::Duration::from_secs(secs)));
    }
    if let Some(max) = args.max_conns {
        router = router.with_max_connections(max);
    }
    if let Some(ms) = args.poll_interval {
        router = router.with_poll_interval(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = args.probe_interval {
        router = router.with_probe_interval((ms > 0).then(|| std::time::Duration::from_millis(ms)));
    }
    let mut builder = ClusterHarness::builder(&args.state_dir)
        .with_options(if args.quick {
            FitOptions::quick()
        } else {
            FitOptions::default()
        })
        .with_router(router);
    if let Some(nodes) = args.nodes {
        builder = builder.with_nodes(nodes);
    }
    if let Some(workers) = args.workers {
        builder = builder.with_workers(workers);
    }
    if let Some(cache) = args.cache {
        builder = builder.with_cache(cache);
    }
    if let Some(registry) = registry {
        builder = builder.with_registry(registry);
    }
    if let Some(addr) = &args.listen {
        builder = builder.with_listen(addr.clone());
    }
    let harness = builder.start()?;
    for i in 0..harness.node_count() {
        writeln!(
            output,
            "node {} {}",
            harness.node_name(i),
            harness.node_addr(i)
        )?;
    }
    writeln!(output, "listening {}", harness.router_addr())?;
    output.flush()?;
    harness.wait();
    Ok(())
}

/// The shared fit pipeline: counters CSV in, fitted per-machine models
/// out, all with the command line's constants.
fn fit_pipeline(args: &FitArgs) -> Result<crate::workbench::Fitted, CliError> {
    let fitted = Workbench::new()
        .arch(args.arch)
        .source(CsvSource::from_path(&args.counters).map_err(PipelineError::from)?)
        .grouping(Grouping::Machine)
        .fit_options(FitOptions::default())
        .collect()?
        .fit()?;
    Ok(fitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceError;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_fit_command() {
        let cmd = parse_args(&strings(&[
            "fit",
            "--counters",
            "x.csv",
            "--width",
            "4",
            "--depth",
            "14",
            "--l2",
            "19",
            "--mem",
            "169",
            "--tlb",
            "30",
        ]))
        .unwrap();
        let Command::Fit(args) = cmd else {
            panic!("expected fit");
        };
        assert_eq!(args.counters, "x.csv");
        assert_eq!(args.arch.width, 4.0);
        assert_eq!(args.arch.c_mem, 169.0);
    }

    #[test]
    fn stack_accepts_csv_flag() {
        let cmd = parse_args(&strings(&[
            "stack",
            "--csv",
            "--counters",
            "x.csv",
            "--width",
            "4",
            "--depth",
            "14",
            "--l2",
            "19",
            "--mem",
            "169",
            "--tlb",
            "30",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Stack(_, true)));
    }

    #[test]
    fn demo_default_path() {
        let cmd = parse_args(&strings(&["demo"])).unwrap();
        assert_eq!(
            cmd,
            Command::Demo {
                out: "demo_counters.csv".into()
            }
        );
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        let err = parse_args(&strings(&["fit", "--counters", "x.csv"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("--width"));
        let err = parse_args(&strings(&["bogus"])).unwrap_err();
        assert!(err.to_string().contains("unknown subcommand"));
        let err = parse_args(&strings(&[])).unwrap_err();
        assert!(err.to_string().contains("missing subcommand"));
    }

    #[test]
    fn bad_numbers_are_usage_errors() {
        let err = parse_args(&strings(&[
            "fit",
            "--counters",
            "x.csv",
            "--width",
            "four",
            "--depth",
            "14",
            "--l2",
            "19",
            "--mem",
            "169",
            "--tlb",
            "30",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--width must be a number"));
    }

    #[test]
    fn demo_then_fit_round_trips() {
        // Per-process dir: parallel checkouts on a shared host must not
        // collide on a fixed /tmp path.
        let dir = std::env::temp_dir().join(format!("cpistack_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("demo.csv").to_string_lossy().into_owned();
        run(&Command::Demo { out: csv.clone() }).unwrap();
        let args = FitArgs {
            counters: csv,
            arch: MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0),
        };
        let report = run(&Command::Fit(args.clone())).unwrap();
        assert!(report.contains("fitted model"));
        assert!(report.contains("accuracy"));
        let stacks = run(&Command::Stack(args.clone(), false)).unwrap();
        assert!(stacks.contains("CPI "));
        let csv_out = run(&Command::Stack(args, true)).unwrap();
        assert!(csv_out.starts_with("benchmark,base"));
    }

    #[test]
    fn parses_serve_command() {
        let cmd = parse_args(&strings(&["serve", "--workers", "3", "--quick"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                workers: Some(3),
                cache: None,
                quick: true,
                ..ServeArgs::default()
            })
        );
        let err = parse_args(&strings(&["serve", "--workers", "many"])).unwrap_err();
        assert!(err.to_string().contains("--workers must be a count"));
        // serve must be dispatched to serve(), not run().
        let err = run(&Command::Serve(ServeArgs::default())).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn parses_serve_engine_flag() {
        let cmd = parse_args(&strings(&["serve", "--engine", "threads"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                engine: Some(ServeBackend::Threads),
                ..ServeArgs::default()
            })
        );
        let cmd = parse_args(&strings(&["serve", "--engine", "events"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                engine: Some(ServeBackend::Events),
                ..ServeArgs::default()
            })
        );
        let err = parse_args(&strings(&["serve", "--engine", "fibers"])).unwrap_err();
        assert!(err.to_string().contains("--engine must be"));
    }

    #[test]
    fn parses_token_command_and_serve_auth_flag() {
        let cmd = parse_args(&strings(&[
            "token",
            "--auth-file",
            "tokens.txt",
            "--tenant",
            "team-a",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Token {
                auth_file: "tokens.txt".into(),
                tenant: "team-a".into(),
            }
        );
        let err = parse_args(&strings(&["token", "--tenant", "team-a"])).unwrap_err();
        assert!(err.to_string().contains("--auth-file"));
        let cmd = parse_args(&strings(&["serve", "--auth", "tokens.txt"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                auth: Some("tokens.txt".into()),
                ..ServeArgs::default()
            })
        );
    }

    #[test]
    fn token_mints_into_file_and_serve_gates_sessions_with_it() {
        let dir = std::env::temp_dir().join(format!("cpistack_cli_auth_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let auth_file = dir.join("tokens.txt").to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&auth_file);
        // Mint a token; stdout is the bare token for script capture.
        let minted = run(&Command::Token {
            auth_file: auth_file.clone(),
            tenant: "team-a".into(),
        })
        .unwrap();
        let token = minted.trim().to_owned();
        assert!(crate::service::auth::validate_token(&token).is_ok());
        // An invalid tenant name is a typed Auth error.
        let err = run(&Command::Token {
            auth_file: auth_file.clone(),
            tenant: "Team A".into(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Auth(_)));
        // A serve session with --auth rejects pre-hello commands and
        // serves the minted tenant after the handshake.
        let mut out = Vec::new();
        serve(
            &ServeArgs {
                workers: Some(1),
                quick: true,
                auth: Some(auth_file),
                ..ServeArgs::default()
            },
            std::io::Cursor::new(format!(
                "stats\nhello {token}\nmachine core2 4 14 19 169 30\nstats\nquit\n"
            )),
            &mut out,
        )
        .expect("auth session runs");
        let transcript = String::from_utf8(out).unwrap();
        assert!(
            transcript.contains("err: authenticate first: hello <token>"),
            "{transcript}"
        );
        assert!(transcript.contains("hello team-a"), "{transcript}");
        assert!(transcript.contains("registered core2"), "{transcript}");
        assert!(transcript.contains("tenant team-a"), "{transcript}");
        // A missing token file is a typed Auth error at startup.
        let err = serve(
            &ServeArgs {
                auth: Some("/nonexistent/tokens.txt".into()),
                ..ServeArgs::default()
            },
            std::io::Cursor::new(String::new()),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Auth(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_bench_command() {
        let cmd = parse_args(&strings(&[
            "bench",
            "--smoke",
            "--uops",
            "5000",
            "--out",
            "b.json",
            "--check",
            "base.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench(BenchArgs {
                smoke: true,
                out: Some("b.json".into()),
                uops: Some(5_000),
                seed: None,
                threads: None,
                check: Some("base.json".into()),
            })
        );
        let err = parse_args(&strings(&["bench", "--uops", "lots"])).unwrap_err();
        assert!(err.to_string().contains("--uops must be a count"));
    }

    #[test]
    fn parses_loadgen_command() {
        let cmd = parse_args(&strings(&[
            "loadgen",
            "--connect",
            "127.0.0.1:7070",
            "--conns",
            "64",
            "--rate",
            "2.5",
            "--duration-ms",
            "500",
            "--mix",
            "bin",
            "--hello",
            "tok123",
            "--budget-ms",
            "40",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Loadgen(LoadgenArgs {
                connect: "127.0.0.1:7070".into(),
                conns: Some(64),
                rate: Some(2.5),
                duration_ms: Some(500),
                mix: Some("bin".into()),
                machine: None,
                suite: None,
                hello: Some("tok123".into()),
                budget_ms: Some(40.0),
            })
        );
        // --connect is mandatory; --rate must parse as a number.
        let err = parse_args(&strings(&["loadgen"])).unwrap_err();
        assert!(err.to_string().contains("missing --connect"), "{err}");
        let err =
            parse_args(&strings(&["loadgen", "--connect", "x:1", "--rate", "fast"])).unwrap_err();
        assert!(err.to_string().contains("--rate must be a number"), "{err}");
        // A bad --mix word is rejected at run time with a usage error.
        let err = run(&Command::Loadgen(LoadgenArgs {
            connect: "127.0.0.1:1".into(),
            mix: Some("binary".into()),
            ..LoadgenArgs::default()
        }))
        .unwrap_err();
        assert!(err.to_string().contains("--mix must be"), "{err}");
    }

    #[test]
    fn parses_serve_fit_threads() {
        let cmd = parse_args(&strings(&["serve", "--fit-threads", "2"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                fit_threads: Some(2),
                ..ServeArgs::default()
            })
        );
    }

    #[test]
    fn parses_serve_transport_flags() {
        let cmd = parse_args(&strings(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--state-dir",
            "/tmp/state",
            "--idle-timeout",
            "30",
            "--max-conns",
            "8",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                listen: Some("127.0.0.1:0".into()),
                state_dir: Some("/tmp/state".into()),
                idle_timeout: Some(30),
                max_conns: Some(8),
                ..ServeArgs::default()
            })
        );
        let err = parse_args(&strings(&["serve", "--idle-timeout", "soon"])).unwrap_err();
        assert!(err.to_string().contains("--idle-timeout must be a count"));
    }

    /// Runs one scripted serve session and returns its full transcript.
    fn serve_transcript(script: &str) -> String {
        let mut out = Vec::new();
        serve(
            &ServeArgs {
                workers: Some(2),
                cache: Some(4),
                quick: true,
                ..ServeArgs::default()
            },
            std::io::Cursor::new(script.to_owned()),
            &mut out,
        )
        .expect("session runs");
        String::from_utf8(out).expect("utf8 transcript")
    }

    #[test]
    fn serve_session_fits_streams_and_reports_cache_hits() {
        let dir = std::env::temp_dir().join(format!("cpistack_serve_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("serve.csv").to_string_lossy().into_owned();
        run(&Command::Demo { out: csv.clone() }).unwrap();
        let transcript = serve_transcript(&format!(
            "machine core2 4 14 19 169 30\n\
             ingest {csv}\n\
             fit core2 cpu2000\n\
             fit core2 cpu2000\n\
             stack core2 cpu2000\n\
             predict core2 cpu2000\n\
             stats\n\
             quit\n"
        ));
        assert!(transcript.contains("ingested 16 records"));
        assert!(transcript.contains("cache: miss"));
        assert!(transcript.contains("cache: hit"), "{transcript}");
        assert!(transcript.contains("stack "));
        assert!(transcript.contains("predicted "));
        assert!(transcript.contains("stats: requests"));
        assert!(transcript.contains("fits 1"), "one regression total");
        assert!(
            transcript.contains(" fit evals "),
            "the fit-effort rider appears once a regression has run: {transcript}"
        );
        assert!(
            !transcript.contains("wall-ms"),
            "transcripts must stay deterministic — no wall-clock in-band"
        );
        assert!(!transcript.contains("err:"), "{transcript}");
        assert_eq!(transcript.lines().filter(|l| *l == "ok").count(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_session_reports_errors_in_band_and_continues() {
        let transcript = serve_transcript(
            "bogus\n\
             machine nope 1 2 3 4 5\n\
             machine core2 nan 14 19 169 30\n\
             fit core2 cpu2000\n\
             ingest /nonexistent/counters.csv\n\
             delta pentium4 core2 all\n\
             help\n\
             quit\n",
        );
        assert!(transcript.contains("err: unknown command `bogus`"));
        assert!(
            transcript.contains("err: unknown machine name `nope`"),
            "{transcript}"
        );
        assert!(
            transcript.contains("err: `nan` must be a positive finite number"),
            "{transcript}"
        );
        // fit before any ingest: a typed service error, in-band.
        assert!(transcript.contains("err: machine `core2` is not registered"));
        // Missing file: in-band, naming the path (the OS suffix varies by
        // platform, so only the prefix is pinned).
        assert!(
            transcript.contains("err: reading `/nonexistent/counters.csv` failed:"),
            "{transcript}"
        );
        assert!(transcript.contains("err: delta needs a concrete suite"));
        assert!(transcript.contains("machine <name>"), "help prints");
        assert!(transcript.ends_with("ok\n"), "quit still acks");
    }

    #[test]
    fn parses_watch_command() {
        let cmd = parse_args(&strings(&[
            "watch",
            "--machine",
            "core2",
            "--suite",
            "cpu2000",
            "--batch",
            "4",
            "--rounds",
            "2",
            "--jitter",
            "9",
            "--record",
            "live.csv",
            "--quick",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Watch(WatchArgs {
                machine: Some("core2".into()),
                suite: Some("cpu2000".into()),
                batch: Some(4),
                rounds: Some(2),
                jitter: Some(9),
                record: Some("live.csv".into()),
                quick: true,
                ..WatchArgs::default()
            })
        );
        // watch streams for its whole session, so run() refuses it.
        let err = run(&Command::Watch(WatchArgs::default())).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = parse_args(&strings(&["watch", "--rounds", "many"])).unwrap_err();
        assert!(err.to_string().contains("--rounds must be a count"));
    }

    #[test]
    fn watch_records_a_replayable_stream() {
        let dir = std::env::temp_dir().join(format!("cpistack_watch_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let live = dir.join("live.csv").to_string_lossy().into_owned();
        let replayed = dir.join("replayed.csv").to_string_lossy().into_owned();

        // A jittered 2-round simulator stream: round 1 anchors with a full
        // fit, round 2 should polish incrementally, and the dirty stream
        // reconciles with one more full fan-out at close.
        let mut out = Vec::new();
        watch(
            &WatchArgs {
                rounds: Some(2),
                jitter: Some(7),
                record: Some(live.clone()),
                quick: true,
                uops: Some(3_000),
                benchmarks: Some(12),
                ..WatchArgs::default()
            },
            &mut out,
        )
        .expect("simulated watch runs");
        let transcript = String::from_utf8(out).unwrap();
        assert!(
            transcript.contains("watching core2 cpu2000"),
            "{transcript}"
        );
        assert!(transcript.contains("refit full"), "{transcript}");
        assert!(transcript.contains("refit incremental"), "{transcript}");
        assert!(transcript.contains(", reconciled"), "{transcript}");
        assert!(transcript.contains("recorded stream appended to"));

        // The recorded CSV replays: streaming it back out through --record
        // reproduces the file byte-exact (header once, rows in order).
        let mut out = Vec::new();
        watch(
            &WatchArgs {
                replay: Some(live.clone()),
                rounds: Some(1),
                record: Some(replayed.clone()),
                quick: true,
                ..WatchArgs::default()
            },
            &mut out,
        )
        .expect("replayed watch runs");
        let transcript = String::from_utf8(out).unwrap();
        assert!(transcript.contains("replay:"), "{transcript}");
        assert_eq!(
            std::fs::read(&live).unwrap(),
            std::fs::read(&replayed).unwrap(),
            "record → replay → record round-trips byte-exact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_typed_source_error() {
        let args = FitArgs {
            counters: "/nonexistent/nope.csv".into(),
            arch: MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0),
        };
        let err = run(&Command::Fit(args)).unwrap_err();
        match &err {
            CliError::Pipeline(PipelineError::Source(SourceError::Io { path, .. })) => {
                assert!(path.ends_with("nope.csv"));
            }
            other => panic!("expected a collect-stage io error, got {other:?}"),
        }
        assert!(err.to_string().contains("collect stage"));
    }

    #[test]
    fn malformed_csv_is_a_typed_parse_error() {
        let dir = std::env::temp_dir().join(format!("cpistack_cli_badcsv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "not,a,counters,header\n1,2,3,4\n").unwrap();
        let args = FitArgs {
            counters: path.to_string_lossy().into_owned(),
            arch: MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0),
        };
        let err = run(&Command::Stack(args, false)).unwrap_err();
        assert!(matches!(
            err,
            CliError::Pipeline(PipelineError::Source(SourceError::Parse { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
