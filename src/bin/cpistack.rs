//! `cpistack` — fit the ISPASS 2011 gray-box model to performance-counter
//! CSVs and print CPI stacks. See `cpistack::cli` for the full story.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cpistack::cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cpistack::cli::run(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
