//! `cpistack` — fit the ISPASS 2011 gray-box model to performance-counter
//! CSVs and print CPI stacks. See `cpistack::cli` for the full story.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cpistack::cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // `serve` streams for its whole session (stdin/stdout, or a TCP
    // listener with --listen); everything else is a one-shot command with
    // buffered output.
    if let cpistack::cli::Command::Serve(args) = &command {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match cpistack::cli::serve(args, stdin.lock(), stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    // `cluster` likewise runs in the foreground until an in-band
    // `shutdown` arrives through the router.
    if let cpistack::cli::Command::Cluster(args) = &command {
        let stdout = std::io::stdout();
        return match cpistack::cli::cluster(args, stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    // `watch` prints one progress line per streamed batch as it happens.
    if let cpistack::cli::Command::Watch(args) = &command {
        let stdout = std::io::stdout();
        return match cpistack::cli::watch(args, stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    match cpistack::cli::run(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
