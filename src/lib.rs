//! # cpistack — mechanistic-empirical CPI stacks on (simulated) hardware
//!
//! A full reproduction of *"Mechanistic-empirical processor performance
//! modeling for constructing CPI stacks on real hardware"* (Eyerman, Hoste,
//! Eeckhout — ISPASS 2011), as a Rust workspace. This facade crate
//! re-exports every sub-crate under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `memodel` | the paper's contribution: Eq. 1–6, inference, CPI stacks, delta stacks |
//! | [`sim`] | `oosim` | out-of-order superscalar simulator (the "real hardware") |
//! | [`workloads`] | `specgen` | synthetic SPEC CPU2000/2006 workload population |
//! | [`counters`] | `pmu` | performance events, counter banks, run records |
//! | [`truth`] | `cpicounters` | ASPLOS'06 ground-truth CPI stack accounting |
//! | [`latency`] | `calibrate` | Calibrator-style latency microbenchmarks |
//! | [`fitting`] | `regress` | Nelder–Mead, OLS and ANN fitting engines |
//! | [`figures`] | `report` | ASCII figures, CSV and table rendering |
//!
//! # Quickstart
//!
//! Everything flows through one pipeline: the [`Workbench`]. Name the
//! machines, plug in a counter source — the built-in simulator
//! ([`SimSource`]), a real-hardware counters CSV ([`CsvSource`]), or
//! in-memory records ([`RecordsSource`]) — then `collect()`, `fit()`, and
//! read off CPI stacks and deltas. Multi-machine collection fans out
//! across threads, and every failure is a typed [`PipelineError`] naming
//! the stage that broke:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::{SimSource, Workbench};
//! use pmu::{MachineId, Suite};
//!
//! // Measure a (sub)suite on two machine generations. Real experiments
//! // use all 48/55 benchmarks and millions of µops; keep doc runs small.
//! let suite: Vec<_> = cpistack::workloads::suites::cpu2000()
//!     .into_iter()
//!     .take(12)
//!     .collect();
//! let fitted = Workbench::new()
//!     .machine(MachineConfig::pentium4())
//!     .machine(MachineConfig::core2())
//!     .source(SimSource::new().suite(suite).uops(30_000).seed(42))
//!     .fit_options(FitOptions::quick())
//!     .collect()
//!     .expect("collect stage")
//!     .fit()
//!     .expect("fit stage");
//!
//! // CPI stacks per benchmark (the paper's headline deliverable) …
//! let core2 = fitted.group(MachineId::Core2, Suite::Cpu2000).unwrap();
//! for (benchmark, stack) in core2.stacks() {
//!     println!("{benchmark}: {stack}");
//! }
//! // … and CPI-delta stacks explaining the generation gap (Fig. 6).
//! let delta = fitted
//!     .delta(MachineId::Pentium4, MachineId::Core2, Suite::Cpu2000)
//!     .expect("both machines collected");
//! assert!(delta.overall.total() < 0.0, "Core 2 wins: {delta}");
//! ```
//!
//! Real hardware needs no simulator: state the machine's constants and
//! feed the CSV your perf tooling exported (see [`cli`] or `cpistack
//! --help` for the command-line version of the same pipeline).
//!
//! ```no_run
//! use cpistack::model::MicroarchParams;
//! use cpistack::workbench::Grouping;
//! use cpistack::{CsvSource, Workbench};
//!
//! # fn main() -> Result<(), cpistack::PipelineError> {
//! let fitted = Workbench::new()
//!     .arch(MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0))
//!     .source(CsvSource::from_path("runs.csv")?)
//!     .grouping(Grouping::Machine)
//!     .collect()?
//!     .fit()?;
//! fitted.export_stacks_to("stacks.csv")?;
//! # Ok(())
//! # }
//! ```

pub mod cli;

pub use calibrate as latency;
pub use cpicounters as truth;
pub use memodel as model;
pub use oosim as sim;
pub use pmu as counters;
pub use regress as fitting;
pub use report as figures;
pub use specgen as workloads;

/// The unified pipeline module (re-export of [`memodel::workbench`]).
pub use memodel::workbench;
pub use memodel::workbench::{
    CounterSource, CsvSource, PipelineError, RecordsSource, SimSource, SourceError, Workbench,
};
