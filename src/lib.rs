//! # cpistack — mechanistic-empirical CPI stacks on (simulated) hardware
//!
//! A full reproduction of *"Mechanistic-empirical processor performance
//! modeling for constructing CPI stacks on real hardware"* (Eyerman, Hoste,
//! Eeckhout — ISPASS 2011), as a Rust workspace. This facade crate
//! re-exports every sub-crate under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `memodel` | the paper's contribution: Eq. 1–6, inference, CPI stacks, delta stacks |
//! | [`sim`] | `oosim` | out-of-order superscalar simulator (the "real hardware") |
//! | [`workloads`] | `specgen` | synthetic SPEC CPU2000/2006 workload population |
//! | [`counters`] | `pmu` | performance events, counter banks, run records |
//! | [`truth`] | `cpicounters` | ASPLOS'06 ground-truth CPI stack accounting |
//! | [`latency`] | `calibrate` | Calibrator-style latency microbenchmarks |
//! | [`fitting`] | `regress` | Nelder–Mead, OLS and ANN fitting engines |
//! | [`figures`] | `report` | ASCII figures, CSV and table rendering |
//!
//! # Quickstart
//!
//! Fit a gray-box model for a machine from simulated counter data and read
//! off a CPI stack:
//!
//! ```
//! use cpistack::model::{InferredModel, MicroarchParams};
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::sim::run::run_suite;
//!
//! let machine = MachineConfig::core2();
//! // Measure a (sub)suite. Real experiments use all 48/55 benchmarks and
//! // millions of µops; keep it small for a doc example.
//! let suite: Vec<_> = cpistack::workloads::suites::cpu2000()
//!     .into_iter()
//!     .take(12)
//!     .collect();
//! let records = run_suite(&machine, &suite, 50_000, 42);
//! let params = MicroarchParams::from_machine(&machine);
//! let model = InferredModel::fit(&params, &records, &Default::default()).unwrap();
//! let stack = model.cpi_stack(&records[0]);
//! println!("{}: {}", records[0].benchmark(), stack);
//! assert!(stack.total() > 0.0);
//! ```

pub mod cli;

pub use calibrate as latency;
pub use cpicounters as truth;
pub use memodel as model;
pub use oosim as sim;
pub use pmu as counters;
pub use regress as fitting;
pub use report as figures;
pub use specgen as workloads;
