//! # cpistack — mechanistic-empirical CPI stacks on (simulated) hardware
//!
//! A full reproduction of *"Mechanistic-empirical processor performance
//! modeling for constructing CPI stacks on real hardware"* (Eyerman, Hoste,
//! Eeckhout — ISPASS 2011), as a Rust workspace. This facade crate
//! re-exports every sub-crate under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `memodel` | the paper's contribution: Eq. 1–6, inference, CPI stacks, delta stacks |
//! | [`sim`] | `oosim` | out-of-order superscalar simulator (the "real hardware") |
//! | [`workloads`] | `specgen` | synthetic SPEC CPU2000/2006 workload population |
//! | [`counters`] | `pmu` | performance events, counter banks, run records |
//! | [`truth`] | `cpicounters` | ASPLOS'06 ground-truth CPI stack accounting |
//! | [`latency`] | `calibrate` | Calibrator-style latency microbenchmarks |
//! | [`fitting`] | `regress` | Nelder–Mead, OLS and ANN fitting engines |
//! | [`figures`] | `report` | ASCII figures, CSV and table rendering |
//!
//! # Quickstart
//!
//! The primary API is the long-lived [`CpiService`]: start it once, and
//! any number of concurrent clients share one warm campaign — counter
//! batches are ingested over a queue, fitted models are memoized in an
//! LRU cache keyed by `(machine, suite, fit options)`, and stacks stream
//! back per benchmark. The first request for a key pays the nonlinear
//! regression; every repeat is a cache hit until new counters arrive:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::service::{CpiService, ModelKey, ServiceConfig};
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::workbench::MachineSpec;
//! use cpistack::SimSource;
//! use pmu::{MachineId, Suite};
//!
//! // Measure a (sub)suite once. Real experiments use all 48/55
//! // benchmarks and millions of µops; keep doc runs small.
//! let machine = MachineConfig::core2();
//! let records = SimSource::new()
//!     .suite(cpistack::workloads::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(20_000)
//!     .seed(42)
//!     .collect_config(&machine);
//!
//! // Serve it: register the machine, ingest the batch, fit on demand.
//! let service = CpiService::start(ServiceConfig::new());
//! let client = service.client();
//! client.register(MachineSpec::from(&machine)).unwrap();
//! client.ingest(records).unwrap();
//!
//! let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
//! let (report, stacks) = client.stacks(key.clone()).unwrap();
//! assert!(!report.cached, "first request fits by regression");
//! for (benchmark, stack) in &stacks {
//!     println!("{benchmark}: {stack}");
//! }
//! // A second client asking for the same key never re-fits.
//! let (repeat, _) = service.client().stacks(key).unwrap();
//! assert!(repeat.cached);
//! service.shutdown();
//! ```
//!
//! The same session is scriptable from a shell via `cpistack serve`, a
//! line protocol over stdin/stdout (see [`cli`] for the command set).
//!
//! ## Serving over TCP
//!
//! The identical protocol is served on a socket with `--listen`: the
//! bound address is announced as `listening <addr>` (so `:0` ephemeral
//! ports script cleanly), every connection gets its own client with
//! per-connection state, idle connections are reaped, and the in-band
//! `shutdown` command stops the whole server gracefully:
//!
//! ```text
//! $ cpistack serve --listen 127.0.0.1:7070 --quick &
//! listening 127.0.0.1:7070
//! $ printf 'machine core2 4 14 19 169 30\ningest runs.csv\nstack core2 cpu2000\nquit\n' \
//!     | nc 127.0.0.1 7070
//! ```
//!
//! Both fronts share one codec ([`service::proto`]), so a scripted
//! session produces byte-identical transcripts over stdio and TCP. Bulk
//! stack streams can skip per-line formatting: the `binstack` command
//! ships every stack of a request as one length-prefixed, checksummed
//! binary frame ([`service::proto::decode_stack_frame`] is the
//! client-side inverse). From Rust, the TCP front embeds directly via
//! [`service::proto::serve_tcp`].
//!
//! ## Restarting with warm state
//!
//! A `--state-dir` makes fitted models durable: every fresh fit is
//! snapshot to a versioned, checksummed file keyed by
//! `(machine, suite, fit-options fingerprint, records digest)`, and a
//! cache miss consults the store before running the regression — so a
//! restarted service serves its first fit request from disk with zero
//! fits. The records digest guarantees freshness: ingest anything new
//! and the key misses, falling through to a re-fit (stale parameters are
//! never served). The same knob is
//! [`ServiceConfig::with_state_dir`](service::ServiceConfig::with_state_dir)
//! in the library, and [`service::persist`] documents the on-disk
//! format:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::service::{CpiService, ModelKey, ServiceConfig};
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::workbench::MachineSpec;
//! use cpistack::SimSource;
//! use pmu::{MachineId, Suite};
//!
//! let dir = std::env::temp_dir().join(format!("cpis_facade_{}", std::process::id()));
//! let machine = MachineConfig::core2();
//! let records = SimSource::new()
//!     .suite(cpistack::workloads::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(5_000)
//!     .seed(42)
//!     .collect_config(&machine);
//! let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
//!
//! // Two service lifetimes against one state dir.
//! for restart in [false, true] {
//!     let service = CpiService::start(ServiceConfig::new().with_state_dir(&dir));
//!     let client = service.client();
//!     client.register(MachineSpec::from(&machine)).unwrap();
//!     client.ingest(records.clone()).unwrap();
//!     let report = client.fit(key.clone()).unwrap();
//!     assert_eq!(report.cached, restart, "the restart fits nothing");
//!     let stats = service.shutdown();
//!     assert_eq!(stats.fits, u64::from(!restart));
//! }
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! ## Multi-tenant serving
//!
//! The same warm service can host **mutually-invisible tenants**: bind a
//! client per [`TenantId`] and everything it touches — machine
//! namespaces, the model cache (per-tenant LRU quotas: one noisy tenant
//! evicts only its own models), persisted snapshots (per-tenant
//! `tenant-<name>/` subdirectories under the state dir) and stats — is
//! scoped to that tenant. A cross-tenant read fails typed; it never
//! serves another tenant's data:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::service::{CpiService, ModelKey, ServiceConfig, ServiceError, TenantId};
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::workbench::MachineSpec;
//! use cpistack::SimSource;
//! use pmu::{MachineId, Suite};
//!
//! let machine = MachineConfig::core2();
//! let records = SimSource::new()
//!     .suite(cpistack::workloads::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(5_000)
//!     .seed(42)
//!     .collect_config(&machine);
//!
//! let service = CpiService::start(ServiceConfig::new());
//! let alpha = service.client_for(TenantId::new("alpha").unwrap());
//! let beta = service.client_for(TenantId::new("beta").unwrap());
//! alpha.register(MachineSpec::from(&machine)).unwrap();
//! alpha.ingest(records).unwrap();
//!
//! let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
//! assert!(alpha.fit(key.clone()).is_ok());
//! // Beta sees nothing of alpha's core2 — same machine id, own namespace.
//! assert!(matches!(
//!     beta.fit(key).unwrap_err(),
//!     ServiceError::NotRegistered { .. }
//! ));
//! assert_eq!(beta.stats().unwrap().fits, 0);
//! service.shutdown();
//! ```
//!
//! On the wire, multi-tenancy is switched on with
//! `cpistack serve --auth <token-file>` (mint tokens with
//! `cpistack token --auth-file <file> --tenant <name>`): every session,
//! stdio and TCP alike, must then open with a `hello <token>` handshake
//! before any command is dispatched. See [`service::auth`] and the
//! README's *Multi-tenant serve* section.
//!
//! ## Run a cluster
//!
//! One process is not a fleet. [`service::cluster`] scales the same
//! protocol out to N backend nodes behind a consistent-hash router:
//! every `(tenant, machine)` key lives on one node of the ring, fresh
//! fits replicate their persist snapshot to the key's ring successor,
//! and a dead node's keys re-route to that successor — which serves
//! them from the replicated snapshot with **zero re-fits**. Clients
//! keep speaking the single-node protocol to the router's port; the
//! golden transcripts replay byte-identical through it. On the command
//! line this tier is `cpistack cluster --state-dir <dir> --nodes 3`;
//! in-process it is [`service::cluster::ClusterHarness`]:
//!
//! ```
//! use cpistack::service::cluster::{ClusterHarness, RouterConfig};
//! use cpistack::sim::machine::MachineConfig;
//! use std::io::{Read, Write};
//!
//! let dir = std::env::temp_dir().join(format!("cpis_facade_cluster_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! std::fs::create_dir_all(&dir).unwrap();
//! let records = cpistack::SimSource::new()
//!     .suite(cpistack::workloads::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(2_000)
//!     .seed(42)
//!     .collect_config(&MachineConfig::core2());
//! std::fs::write(dir.join("runs.csv"), pmu::csv::to_csv(&records)).unwrap();
//!
//! // Three nodes + router in one process; replication on (default 1).
//! let mut cluster = ClusterHarness::builder(dir.join("state"))
//!     .with_router(
//!         RouterConfig::new("doc cluster")
//!             .with_poll_interval(std::time::Duration::from_millis(2)),
//!     )
//!     .start()
//!     .unwrap();
//! let router = cluster.router_addr();
//! let session = |script: String| {
//!     let mut s = std::net::TcpStream::connect(router).unwrap();
//!     s.write_all(script.as_bytes()).unwrap();
//!     let mut out = String::new();
//!     s.read_to_string(&mut out).unwrap();
//!     out
//! };
//!
//! // Fit through the router; the same session ships the snapshot to
//! // the ring successor.
//! let fit = session(format!(
//!     "machine core2 4 14 19 169 30\ningest {}\nfit core2 cpu2000\nquit\n",
//!     dir.join("runs.csv").display(),
//! ));
//! assert!(fit.contains("cache: miss") && !fit.contains("err:"), "{fit}");
//!
//! // Kill the owning node — its port now refuses connections, exactly
//! // like a crashed process…
//! let owner = cluster.owner_index("local", "core2").unwrap();
//! cluster.kill(owner);
//!
//! // …and the tenant is still servable: the successor warm-loads the
//! // replicated snapshot. Zero re-fits.
//! let after = session("stack core2 cpu2000\nstats\nquit\n".to_string());
//! assert!(after.contains(" fits 0 ") && after.contains(" warm 1 "), "{after}");
//! cluster.shutdown();
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! ## Sweep a design space
//!
//! One [`CpiClient::sweep`](service::CpiClient::sweep) request explores
//! a whole parameter grid — ROB × MSHRs × dispatch width × prefetch
//! depth over a base machine — instead of one `delta` per hypothetical
//! config. The grid expands into named variants
//! (`core2+rob192+mshr32`, …), each **distinct** configuration
//! simulates exactly once on the work-stealing collect pool, every
//! variant fits through the shared model cache, and the summary ranks
//! them: per-variant CPI, delta stacks against the base, and the Pareto
//! front over (CPI, component-of-interest). Re-sweeping the same grid
//! simulates and refits nothing:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::service::sweep::{SweepGrid, SweepSpec};
//! use cpistack::service::{CpiService, ServiceConfig};
//! use pmu::{MachineId, Suite};
//!
//! // A 2×2 grid over the Core 2: the stock point collapses into
//! // `core2` itself, so four named variants come back. Doc scale —
//! // real sweeps run the full suite at millions of µops.
//! let grid = SweepGrid::new().rob([64, 96]).mshrs([8, 16]);
//! let mut spec = SweepSpec::new(MachineId::Core2, grid, Suite::Cpu2000);
//! spec.options = FitOptions::quick();
//! spec.uops = 2_000;
//! spec.limit = Some(12);
//!
//! let service = CpiService::start(ServiceConfig::new());
//! let client = service.client();
//!
//! let cold = client.sweep(spec.clone()).unwrap();
//! assert_eq!(cold.results.len(), 4);
//! assert_eq!(cold.simulated_configs, 4, "once per distinct config");
//!
//! // The warm re-sweep serves the identical grid from cache.
//! let warm = client.sweep(spec).unwrap();
//! assert_eq!(warm.simulated_configs, 0);
//! assert!(warm.results.iter().all(|r| r.cached));
//! let best = &warm.ranked()[0];
//! println!("best: {} cpi {:.3} ({})", best.id.name(), best.cpi, best.delta);
//! assert!(warm.pareto.contains(&best.id), "lowest CPI is Pareto-optimal");
//! service.shutdown();
//! ```
//!
//! The `sweep` protocol verb exposes the same request on every front —
//! stdio, TCP, and the cluster router, which partitions the grid by
//! ring owner, fans the slices out in parallel, and reroutes a dead
//! node's slice to its ring successor mid-sweep. See the `cpistack
//! sweep` subcommand and `examples/design_space.rs` for the CLI and
//! programmatic drivers.
//!
//! ## Watch live counters
//!
//! Static CSV ingest is one way to feed the service; a **live stream**
//! is the other. [`pmu::live`] abstracts timed counter sampling behind
//! the `LiveSource` trait: `ReplaySource` replays a recorded campaign
//! (or any record set) in batches, deterministically — optionally over
//! several rounds with ±1% counter jitter — and, on Linux with the
//! `perf-events` feature enabled, `PerfSource` samples real hardware
//! counters via `perf_event_open`. [`service::stream::pump`] drives any
//! such source into a warm service: each batch **upserts** its records
//! (same benchmark + suite replaces, so the store never grows without
//! bound), then a drift-guarded **incremental refit** serves the new
//! model — a warm-start Nelder–Mead polish at a small budget instead of
//! the full multi-start fan-out, falling back to the fan-out when the
//! workload digest changes, the polish drifts past the guard's bound,
//! or the periodic re-anchor cadence comes due. Closing the stream
//! reconciles with one forced full refit, which makes the final
//! parameters a pure function of the final record set — independent of
//! how the stream was chopped into batches:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::service::{stream, CpiService, ModelKey, ServiceConfig};
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::workbench::MachineSpec;
//! use cpistack::SimSource;
//! use pmu::live::ReplaySource;
//! use pmu::{MachineId, Suite};
//!
//! let machine = MachineConfig::core2();
//! let records = SimSource::new()
//!     .suite(cpistack::workloads::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(3_000)
//!     .seed(42)
//!     .collect_config(&machine);
//!
//! let service = CpiService::start(ServiceConfig::new());
//! let client = service.client();
//! client.register(MachineSpec::from(&machine)).unwrap();
//!
//! // Replay the campaign as three "live" rounds: round one anchors with
//! // a full fit, the jittered repeats are incremental polishes, and the
//! // close reconciles with one forced fan-out.
//! let mut source = ReplaySource::new(records).batch_size(12).rounds(3).jitter(7);
//! let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
//! let summary = stream::pump(
//!     &client,
//!     &key,
//!     &mut source,
//!     &stream::PumpOptions::default(),
//!     |batch, _records| {
//!         let mode = batch.mode.map_or("deferred", |m| m.name());
//!         println!("batch {}: refit {mode}", batch.batch);
//!     },
//! )
//! .unwrap();
//! assert_eq!(summary.full_refits, 1, "one anchor");
//! assert!(summary.incremental_refits >= 1, "steady state is cheap");
//! assert!(summary.reconciled);
//! let stats = service.shutdown();
//! assert!(stats.cache.incremental_refits >= 1);
//! ```
//!
//! The command-line twin is `cpistack watch`: it pumps a simulator
//! campaign (or `--replay <csv>` a recorded one) into a fresh service at
//! a configurable cadence, printing one line per batch, and `--record
//! <csv>` appends every streamed batch to a file that replays byte-exact
//! later. The refit split shows up in `stats` as `refits full N
//! incremental M`, and the steady-state saving is a tracked number in
//! `BENCH_10.json` (`stream_speedup`). The `perf-events` backend is
//! feature-gated (`cargo check --features perf-events`) so the default
//! build never touches raw syscalls.
//!
//! ## Load-test the serving tier
//!
//! Every TCP front here is a readiness **event loop** by default — one
//! thread drives all connections through
//! [`service::poller::Poller`] (epoll on Linux, `poll(2)` elsewhere;
//! [`ServeBackend::Threads`](service::poller::ServeBackend) restores
//! thread-per-connection for A/B runs) — and [`loadgen`] is the
//! matching measurement harness: an **open-loop** generator that fires
//! warm `stack`/`binstack` requests on a fixed per-connection schedule
//! and measures each response against its *scheduled* send slot, so
//! server-side queueing shows up in the percentiles instead of slowing
//! the client down (no coordinated omission):
//!
//! ```
//! use cpistack::loadgen::{self, LoadgenConfig};
//! use cpistack::model::FitOptions;
//! use cpistack::service::proto::{self, SessionSpec, TcpServerConfig};
//! use cpistack::service::{CpiService, ModelKey, ServiceConfig};
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::SimSource;
//! use pmu::{MachineId, Suite};
//! use std::time::Duration;
//!
//! // A warm server: one fitted model behind the readiness TCP front.
//! let machine = MachineConfig::core2();
//! let records = SimSource::new()
//!     .suite(cpistack::workloads::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(2_000)
//!     .seed(7)
//!     .collect_config(&machine);
//! let service = CpiService::start(ServiceConfig::new());
//! let client = service.client();
//! client.register((&machine).into()).unwrap();
//! client.ingest(records).unwrap();
//! let options = FitOptions::quick();
//! client
//!     .fit(ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), options.clone()))
//!     .unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = proto::serve_tcp(
//!     listener,
//!     SessionSpec::open(client, options),
//!     TcpServerConfig::new("doc bench"),
//! )
//! .unwrap();
//!
//! // Eight connections × 50 req/s of mixed warm traffic for 300 ms.
//! let report = loadgen::run(
//!     &LoadgenConfig::new(server.local_addr(), "core2", "cpu2000")
//!         .with_connections(8)
//!         .with_rate(50.0)
//!         .with_duration(Duration::from_millis(300)),
//! )
//! .unwrap();
//! assert_eq!(report.sustained, 8);
//! assert_eq!(report.errors, 0);
//! assert_eq!(report.dropped, 0);
//! assert_eq!(report.completed, report.sent);
//! assert!(report.p99 > Duration::ZERO);
//! server.shutdown();
//! service.shutdown();
//! ```
//!
//! The client itself multiplexes every connection on one thread over
//! the same [`Poller`](service::poller::Poller), so at hundreds of
//! connections the harness measures the server, not client scheduler
//! jitter. The CLI twin is `cpistack loadgen --connect <addr>`
//! (`--budget-ms` makes it a CI gate), and `cpistack bench` records the
//! connection-scaling comparison — the readiness engine sustaining 4×
//! the thread engine's connection count at equal-or-better p99 — in
//! `BENCH_10.json`.
//!
//! ## Performance: parallel cold paths, a tracked baseline
//!
//! The cold paths are engineered too, and everything parallel is
//! **bit-identical** to sequential by construction. Campaign collection
//! drains one shared (machine × benchmark) work-list through a
//! work-stealing pool ([`Workbench::threads`](workbench::Workbench::threads),
//! `0` = one worker per core) with pre-assigned output slots, so the
//! records come back byte-for-byte equal at any worker count. A cold
//! fit fans its 13 jittered Nelder–Mead starts across work-stealing
//! threads ([`FitOptions::threads`](model::FitOptions::threads)) and
//! splits each objective evaluation into fixed-size chunks reduced in
//! deterministic order, so parameters *and* objective-evaluation counts
//! are identical at any thread count — the budget is pure scheduling,
//! excluded from
//! [`FitOptions::fingerprint`](model::FitOptions::fingerprint), so it
//! never splits a cache key and persisted snapshots stay warm across
//! budget changes. Cap a deployment's per-fit fan-out with
//! [`ServiceConfig::with_fit_threads`](service::ServiceConfig::with_fit_threads)
//! (concurrent fits time-share the budget). Campaign collection reuses
//! simulation buffers across runs and exposes the warm-up budget
//! ([`SimSource::warmup`](workbench::SimSource::warmup), default
//! unchanged). `cpistack bench` times cold collect (pool vs sequential)
//! / cold fit (parallel vs sequential, eval counts included) / warm
//! serve on the paper campaign — plus the cluster tier's warm
//! router-hop overhead, the streaming tier's incremental-vs-full refit
//! split, and the connection-scaling loadgen campaigns — asserts the
//! byte-identities, and writes the `BENCH_10.json` snapshot that CI
//! gates against (see the README's Performance section for current
//! numbers):
//!
//! ```
//! use cpistack::model::FitOptions;
//!
//! let opts = FitOptions::default().with_threads(8);
//! assert_eq!(opts.fingerprint(), FitOptions::default().fingerprint());
//! ```
//!
//! ## Quick scripts: the one-shot [`Workbench`]
//!
//! When one result is all you need, the [`Workbench`] builder runs the
//! whole collect → fit → stacks flow in a single expression — internally
//! it spins up an ephemeral [`CpiService`], so both paths share one
//! fitting code path. Every failure is a typed [`PipelineError`] naming
//! the stage that broke:
//!
//! ```
//! use cpistack::model::FitOptions;
//! use cpistack::sim::machine::MachineConfig;
//! use cpistack::{SimSource, Workbench};
//! use pmu::{MachineId, Suite};
//!
//! let suite: Vec<_> = cpistack::workloads::suites::cpu2000()
//!     .into_iter()
//!     .take(12)
//!     .collect();
//! let fitted = Workbench::new()
//!     .machine(MachineConfig::pentium4())
//!     .machine(MachineConfig::core2())
//!     .source(SimSource::new().suite(suite).uops(30_000).seed(42))
//!     .fit_options(FitOptions::quick())
//!     .collect()
//!     .expect("collect stage")
//!     .fit()
//!     .expect("fit stage");
//!
//! // CPI-delta stacks explaining the generation gap (Fig. 6).
//! let delta = fitted
//!     .delta(MachineId::Pentium4, MachineId::Core2, Suite::Cpu2000)
//!     .expect("both machines collected");
//! assert!(delta.overall.total() < 0.0, "Core 2 wins: {delta}");
//! ```
//!
//! Real hardware needs no simulator: state the machine's constants and
//! feed the CSV your perf tooling exported (see [`cli`] or `cpistack
//! --help` for the command-line version of the same pipeline).
//!
//! ```no_run
//! use cpistack::model::MicroarchParams;
//! use cpistack::workbench::Grouping;
//! use cpistack::{CsvSource, Workbench};
//!
//! # fn main() -> Result<(), cpistack::PipelineError> {
//! let fitted = Workbench::new()
//!     .arch(MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0))
//!     .source(CsvSource::from_path("runs.csv")?)
//!     .grouping(Grouping::Machine)
//!     .collect()?
//!     .fit()?;
//! fitted.export_stacks_to("stacks.csv")?;
//! # Ok(())
//! # }
//! ```

pub mod cli;
pub mod loadgen;
pub mod perf;

pub use calibrate as latency;
pub use cpicounters as truth;
pub use memodel as model;
pub use oosim as sim;
pub use pmu as counters;
pub use regress as fitting;
pub use report as figures;
pub use specgen as workloads;

/// The unified pipeline module (re-export of [`memodel::workbench`]).
pub use memodel::workbench;
pub use memodel::workbench::{
    CounterSource, CsvSource, PipelineError, RecordsSource, SimSource, SourceError, Workbench,
};

/// The long-lived serving layer (re-export of [`memodel::service`]).
pub use memodel::service;
pub use memodel::service::{
    CpiClient, CpiService, ModelKey, RefitMode, RefitPolicy, ServiceConfig, ServiceError,
    ServiceStats, TenantId,
};
