//! CPI-delta stacks: explain where the Core 2's advantage over the
//! Pentium 4 comes from, benchmark by benchmark (the paper's Fig. 6
//! analysis, §6).
//!
//! One `Workbench` pipeline measures the same programs on both machines —
//! on parallel threads — and fits a model per machine; the delta view
//! falls out of the fitted result.
//!
//! Run with `cargo run --release --example cpi_delta_stacks`.

use cpistack::figures::signed_bars;
use cpistack::model::delta::delta_stack;
use cpistack::model::FitOptions;
use cpistack::sim::machine::MachineConfig;
use cpistack::{SimSource, Workbench};
use pmu::{MachineId, Suite};

fn main() -> Result<(), cpistack::PipelineError> {
    let fitted = Workbench::new()
        .machine(MachineConfig::pentium4())
        .machine(MachineConfig::core2())
        .source(
            SimSource::new()
                .suite(cpistack::workloads::suites::cpu2000())
                .uops(200_000)
                .seed(42),
        )
        .fit_options(FitOptions::default())
        .collect()?
        .fit()?;

    // Suite-level view: the aggregate delta stack.
    let agg = fitted.delta(MachineId::Pentium4, MachineId::Core2, Suite::Cpu2000)?;
    println!(
        "{}",
        signed_bars(
            &format!(
                "Core 2 vs Pentium 4, CPU2000 suite average (Δ {:+.3} cycles/instr)",
                agg.overall.total()
            ),
            &agg.overall.components(),
            30,
        )
    );
    println!(
        "{}",
        signed_bars(
            "branch component split (the paper's §6 surprise: Core 2 mispredicts MORE)",
            &agg.branch.components(),
            30,
        )
    );

    // Per-benchmark view for a few interesting programs.
    let old = fitted
        .group(MachineId::Pentium4, Suite::Cpu2000)
        .expect("collected");
    let new = fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("collected");
    for name in ["mcf.inp", "crafty.inp", "swim.inp"] {
        let (old_r, new_r) = match (
            old.records.iter().find(|r| r.benchmark() == name),
            new.records.iter().find(|r| r.benchmark() == name),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => continue,
        };
        let d = delta_stack(&old.model, old_r, &new.model, new_r);
        println!("{name}: {d}");
    }
    Ok(())
}
