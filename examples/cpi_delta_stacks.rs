//! CPI-delta stacks: explain where the Core 2's advantage over the
//! Pentium 4 comes from, benchmark by benchmark (the paper's Fig. 6
//! analysis, §6).
//!
//! Run with `cargo run --release --example cpi_delta_stacks`.

use cpistack::figures::signed_bars;
use cpistack::model::delta::{delta_stack, suite_delta};
use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::sim::machine::MachineConfig;
use cpistack::sim::run::run_suite;

fn main() {
    let old_machine = MachineConfig::pentium4();
    let new_machine = MachineConfig::core2();
    let suite = cpistack::workloads::suites::cpu2000();
    let uops = 200_000;

    // Measure the same programs on both machines and fit a model for each.
    let old_records = run_suite(&old_machine, &suite, uops, 42);
    let new_records = run_suite(&new_machine, &suite, uops, 42);
    let opts = FitOptions::default();
    let old_model = InferredModel::fit(
        &MicroarchParams::from_machine(&old_machine),
        &old_records,
        &opts,
    )
    .expect("fit old machine");
    let new_model = InferredModel::fit(
        &MicroarchParams::from_machine(&new_machine),
        &new_records,
        &opts,
    )
    .expect("fit new machine");

    // Suite-level view: the aggregate delta stack.
    let agg = suite_delta(&old_model, &old_records, &new_model, &new_records);
    println!(
        "{}",
        signed_bars(
            &format!(
                "Core 2 vs Pentium 4, CPU2000 suite average (Δ {:+.3} cycles/instr)",
                agg.overall.total()
            ),
            &agg.overall.components(),
            30,
        )
    );
    println!(
        "{}",
        signed_bars(
            "branch component split (the paper's §6 surprise: Core 2 mispredicts MORE)",
            &agg.branch.components(),
            30,
        )
    );

    // Per-benchmark view for a few interesting programs.
    for name in ["mcf.inp", "crafty.inp", "swim.inp"] {
        let (old_r, new_r) = match (
            old_records.iter().find(|r| r.benchmark() == name),
            new_records.iter().find(|r| r.benchmark() == name),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => continue,
        };
        let d = delta_stack(&old_model, old_r, &new_model, new_r);
        println!("{name}: {d}");
    }
}
