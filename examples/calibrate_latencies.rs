//! Latency calibration: reproduce Table 2's microbenchmark methodology —
//! pointer-chase a growing footprint and read the cache hierarchy off the
//! latency staircase — then close the loop: feed the *calibrated*
//! constants (not the spec-sheet ones) into a `Workbench` fit, exactly
//! what a user without a datasheet would do on real hardware.
//!
//! Run with `cargo run --release --example calibrate_latencies`.

use cpistack::latency::{calibrate_machine, default_footprints, sweep};
use cpistack::model::eval::{evaluate_model, summarize};
use cpistack::model::{FitOptions, MicroarchParams};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::MachineSpec;
use cpistack::{SimSource, Workbench};

fn main() -> Result<(), cpistack::PipelineError> {
    for machine in MachineConfig::paper_machines() {
        println!("=== {} ===", machine.name);
        let curve = sweep(&machine, &default_footprints());
        println!("{:>12}  {:>12}", "footprint", "cycles/load");
        for (footprint, latency) in &curve {
            let bar = "#".repeat((latency / 4.0) as usize);
            println!("{:>9} KiB  {latency:>12.1}  {bar}", footprint / 1024);
        }
        let estimates = calibrate_machine(&machine);
        println!("\ncalibrated: {estimates}");
        println!(
            "configured: L1 {}, L2 {}, {}mem {}, TLB {} cycles",
            machine.lat.l1d,
            machine.lat.l2,
            machine
                .l3
                .map(|_| format!("L3 {}, ", machine.lat.l3))
                .unwrap_or_default(),
            machine.lat.mem,
            machine.lat.tlb
        );

        // Close the loop: fit the model with the *calibrated* constants,
        // as a real-hardware user without a spec sheet would.
        let spec_arch = MicroarchParams::from_machine(&machine);
        let calibrated_arch = MicroarchParams::new(
            spec_arch.width,
            spec_arch.fe_depth,
            estimates.l2,
            estimates.mem,
            estimates.tlb,
        );
        let suite: Vec<_> = cpistack::workloads::suites::cpu2000()
            .into_iter()
            .take(16)
            .collect();
        let fitted = Workbench::new()
            .machine(MachineSpec::real(machine.id, calibrated_arch).with_config(machine.clone()))
            .source(SimSource::new().suite(suite).uops(60_000).seed(42))
            .fit_options(FitOptions::quick())
            .collect()?
            .fit()?;
        let group = &fitted.groups()[0];
        let summary = summarize(&evaluate_model(&group.model, &group.records));
        println!("model fitted with calibrated latencies: {summary}\n");
    }
    Ok(())
}
