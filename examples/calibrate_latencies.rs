//! Latency calibration: reproduce Table 2's microbenchmark methodology —
//! pointer-chase a growing footprint and read the cache hierarchy off the
//! latency staircase.
//!
//! Run with `cargo run --release --example calibrate_latencies`.

use cpistack::latency::{calibrate_machine, default_footprints, sweep};
use cpistack::sim::machine::MachineConfig;

fn main() {
    for machine in MachineConfig::paper_machines() {
        println!("=== {} ===", machine.name);
        let curve = sweep(&machine, &default_footprints());
        println!("{:>12}  {:>12}", "footprint", "cycles/load");
        for (footprint, latency) in &curve {
            let bar = "#".repeat((latency / 4.0) as usize);
            println!("{:>9} KiB  {latency:>12.1}  {bar}", footprint / 1024);
        }
        let estimates = calibrate_machine(&machine);
        println!("\ncalibrated: {estimates}");
        println!(
            "configured: L1 {}, L2 {}, {}mem {}, TLB {} cycles\n",
            machine.lat.l1d,
            machine.lat.l2,
            machine
                .l3
                .map(|_| format!("L3 {}, ", machine.lat.l3))
                .unwrap_or_default(),
            machine.lat.mem,
            machine.lat.tlb
        );
    }
}
