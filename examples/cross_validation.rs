//! Robustness and overfitting: fit on one suite, predict the other — the
//! experiment behind the paper's Fig. 3–4 claim that purely empirical
//! models overfit while the gray-box model generalises.
//!
//! Run with `cargo run --release --example cross_validation`.

use cpistack::model::baselines::{BaselineKind, EmpiricalModel};
use cpistack::model::eval::{evaluate_baseline, evaluate_model, summarize};
use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::sim::machine::MachineConfig;
use cpistack::sim::run::run_suite;

fn main() {
    let machine = MachineConfig::core_i7();
    let uops = 200_000;
    let train = run_suite(&machine, &cpistack::workloads::suites::cpu2000(), uops, 42);
    let test = run_suite(&machine, &cpistack::workloads::suites::cpu2006(), uops, 42);
    let arch = MicroarchParams::from_machine(&machine);

    let gray = InferredModel::fit(&arch, &train, &FitOptions::default()).expect("gray-box fit");
    let ann = EmpiricalModel::fit(BaselineKind::NeuralNetwork, &train).expect("ann fit");
    let lin = EmpiricalModel::fit(BaselineKind::Linear, &train).expect("ols fit");

    println!("machine: {} — fit on CPU2000, evaluate on both suites\n", machine.name);
    println!("{:<24} {:>16} {:>16}", "model", "CPU2000 (train)", "CPU2006 (unseen)");
    let row = |name: &str, on_train: f64, on_test: f64| {
        println!(
            "{name:<24} {:>15.1}% {:>15.1}%",
            on_train * 100.0,
            on_test * 100.0
        );
    };
    row(
        "mechanistic-empirical",
        summarize(&evaluate_model(&gray, &train)).mean,
        summarize(&evaluate_model(&gray, &test)).mean,
    );
    row(
        "neural network",
        summarize(&evaluate_baseline(&ann, &train)).mean,
        summarize(&evaluate_baseline(&ann, &test)).mean,
    );
    row(
        "linear regression",
        summarize(&evaluate_baseline(&lin, &train)).mean,
        summarize(&evaluate_baseline(&lin, &test)).mean,
    );
    println!(
        "\nThe ANN memorises the training suite (near-zero error) and degrades on\n\
         the unseen one; the gray-box model's structure keeps it honest both ways."
    );
}
