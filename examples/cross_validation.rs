//! Robustness and overfitting: fit on one suite, predict the other — the
//! experiment behind the paper's Fig. 3–4 claim that purely empirical
//! models overfit while the gray-box model generalises.
//!
//! Run with `cargo run --release --example cross_validation`.

use cpistack::model::baselines::{BaselineKind, EmpiricalModel};
use cpistack::model::eval::{evaluate_baseline, evaluate_model, summarize};
use cpistack::model::FitOptions;
use cpistack::sim::machine::MachineConfig;
use cpistack::{SimSource, Workbench};
use pmu::{MachineId, Suite};

fn main() -> Result<(), cpistack::PipelineError> {
    let machine = MachineConfig::core_i7();
    let name = machine.name.clone();

    // One pipeline collects both suites and fits the gray-box model per
    // (machine, suite) group; the CPU2000 group is the training side.
    let fitted = Workbench::new()
        .machine(machine)
        .source(SimSource::paper_suites().uops(200_000).seed(42))
        .fit_options(FitOptions::default())
        .collect()?
        .fit()?;
    let train = fitted
        .records(MachineId::CoreI7, Suite::Cpu2000)
        .expect("collected");
    let test = fitted
        .records(MachineId::CoreI7, Suite::Cpu2006)
        .expect("collected");
    let gray = fitted
        .model(MachineId::CoreI7, Suite::Cpu2000)
        .expect("fitted");
    // The pipeline also fitted the native CPU2006 model — the Fig. 3
    // robustness yardstick the transferred model is judged against.
    let native = fitted
        .model(MachineId::CoreI7, Suite::Cpu2006)
        .expect("fitted");

    // The purely empirical baselines train on the same records.
    let ann = EmpiricalModel::fit(BaselineKind::NeuralNetwork, train).expect("ann fit");
    let lin = EmpiricalModel::fit(BaselineKind::Linear, train).expect("ols fit");

    println!("machine: {name} — fit on CPU2000, evaluate on both suites\n");
    println!(
        "{:<24} {:>16} {:>16}",
        "model", "CPU2000 (train)", "CPU2006 (unseen)"
    );
    let row = |name: &str, on_train: f64, on_test: f64| {
        println!(
            "{name:<24} {:>15.1}% {:>15.1}%",
            on_train * 100.0,
            on_test * 100.0
        );
    };
    row(
        "mechanistic-empirical",
        summarize(&evaluate_model(gray, train)).mean,
        summarize(&evaluate_model(gray, test)).mean,
    );
    row(
        "neural network",
        summarize(&evaluate_baseline(&ann, train)).mean,
        summarize(&evaluate_baseline(&ann, test)).mean,
    );
    row(
        "linear regression",
        summarize(&evaluate_baseline(&lin, train)).mean,
        summarize(&evaluate_baseline(&lin, test)).mean,
    );
    println!(
        "\nThe ANN memorises the training suite (near-zero error) and degrades on\n\
         the unseen one; the gray-box model's structure keeps it honest both ways."
    );
    println!(
        "\nFig. 3 yardstick: the native CPU2006 gray-box model scores {:.1}% on\n\
         CPU2006 — the transferred CPU2000 model should land close to it.",
        summarize(&evaluate_model(native, test)).mean * 100.0
    );
    Ok(())
}
