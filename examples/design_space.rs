//! Design-space exploration with the machine builder: what would the
//! Core 2 gain from a larger ROB, more MSHRs, or a deeper prefetcher?
//! The fitted model's CPI stacks say *where* each variant's time goes —
//! the kind of what-if analysis the paper positions CPI stacks for
//! ("opportunities for software and hardware optimization", §1).
//!
//! Each variant runs its own `Workbench` pipeline (they share the
//! `MachineId`, so they cannot share one multi-machine collect).
//!
//! Run with `cargo run --release --example design_space`.

use cpistack::model::FitOptions;
use cpistack::sim::machine::MachineConfig;
use cpistack::{PipelineError, SimSource, Workbench};

fn main() -> Result<(), PipelineError> {
    let base = MachineConfig::core2();
    let variants = vec![
        ("baseline Core 2", base.clone()),
        (
            "2x ROB (192)",
            MachineConfig::builder(base.clone()).rob_size(192).build(),
        ),
        (
            "2x MSHRs (32)",
            MachineConfig::builder(base.clone()).mshrs(32).build(),
        ),
        (
            "no prefetcher",
            MachineConfig::builder(base.clone())
                .prefetch_depth(0)
                .build(),
        ),
        (
            "6-wide dispatch",
            MachineConfig::builder(base.clone())
                .dispatch_width(6)
                .build(),
        ),
    ];

    // A memory-and-branch heavy subset keeps the contrast visible.
    let suite: Vec<_> = cpistack::workloads::suites::cpu2006()
        .into_iter()
        .filter(|p| {
            [
                "mcf.inp",
                "lbm.ref",
                "milc.ref",
                "gobmk.13x13",
                "libquantum.ref",
                "soplex.ref",
                "sjeng.ref",
                "omnetpp.ref",
                "astar.rivers",
                "gcc.166",
                "calculix.hyperviscoplastic",
                "namd.ref",
            ]
            .contains(&p.name.as_ref())
        })
        .collect();

    println!(
        "{:<18} {:>8}  average CPI stack (per µop)",
        "variant", "avg CPI"
    );
    for (name, machine) in variants {
        let collected = Workbench::new()
            .machine(machine)
            .source(SimSource::new().suite(suite.clone()).uops(150_000).seed(42))
            .fit_options(FitOptions::quick())
            .collect()?;
        let records: Vec<_> = collected.records().cloned().collect();
        let avg_cpi: f64 = records.iter().map(|r| r.cpi()).sum::<f64>() / records.len() as f64;
        match collected.fit() {
            Ok(fitted) => {
                let group = &fitted.groups()[0];
                // Average the component estimates over the subset.
                let mut acc = [0.0f64; 8];
                for r in &group.records {
                    for (k, (_, v)) in group.model.cpi_stack(r).components().iter().enumerate() {
                        acc[k] += v / group.records.len() as f64;
                    }
                }
                let named: Vec<String> = group
                    .model
                    .cpi_stack(&group.records[0])
                    .components()
                    .iter()
                    .zip(acc)
                    .filter(|(_, v)| *v > 0.01)
                    .map(|((n, _), v)| format!("{n}:{v:.2}"))
                    .collect();
                println!("{name:<18} {avg_cpi:>8.3}  {}", named.join(" "));
            }
            Err(e) => println!("{name:<18} {avg_cpi:>8.3}  (model: {e})"),
        }
    }
    Ok(())
}
