//! Design-space exploration as a service: what would the Core 2 gain
//! from a larger ROB, more MSHRs, a wider dispatch, or no prefetcher?
//! The fitted models' CPI stacks say *where* each variant's time goes —
//! the kind of what-if analysis the paper positions CPI stacks for
//! ("opportunities for software and hardware optimization", §1).
//!
//! One `sweep` request replaces the per-variant `Workbench` loop this
//! example used to run: the service expands the grid, simulates each
//! *distinct* configuration exactly once on its work-stealing collect
//! pool, fits every variant through the shared model cache, and ranks
//! the results with delta stacks against the base and a Pareto front
//! over (CPI, component of interest). Run it twice to see the warm
//! path: the second sweep reports `simulated 0 configs` and serves
//! every variant from cache.
//!
//! Run with `cargo run --release --example design_space`.

use cpistack::model::FitOptions;
use cpistack::service::sweep::{StackComponent, SweepGrid, SweepSpec};
use cpistack::service::{CpiService, ServiceConfig, ServiceError};
use pmu::{MachineId, Suite};

fn main() -> Result<(), ServiceError> {
    // The paper's three-axis what-if grid, one request: ROB 96 (stock)
    // vs 192, MSHRs 16 (stock) vs 32, dispatch 4 (stock) vs 6, and the
    // prefetcher on (depth 4, stock) vs off. Stock values collapse into
    // the base point, so the 16-point grid holds 16 *named* variants —
    // `core2` itself plus every non-stock combination.
    let grid = SweepGrid::new()
        .rob([96, 192])
        .mshrs([16, 32])
        .dispatch([4, 6])
        .prefetch([0, 4]);
    let mut spec = SweepSpec::new(MachineId::Core2, grid, Suite::Cpu2006);
    spec.options = FitOptions::quick();
    spec.uops = 20_000;
    spec.limit = Some(12); // a memory-heavy subset keeps the contrast visible
    spec.component = StackComponent::LlcD; // long-latency loads: the paper's focus

    let service = CpiService::start(ServiceConfig::new());
    let client = service.client();

    for pass in ["cold sweep", "warm re-sweep"] {
        let summary = client.sweep(spec.clone())?;
        println!(
            "{pass}: {} variants, simulated {} configs / {} runs",
            summary.results.len(),
            summary.simulated_configs,
            summary.simulated_runs,
        );
        println!(
            "{:<4} {:<28} {:>8} {:>9} {:>8}  front",
            "rank", "variant", "cpi", "llc_d", "Δcpi"
        );
        for (rank, result) in summary.ranked().iter().enumerate() {
            let front = if summary.pareto.contains(&result.id) {
                "*"
            } else {
                ""
            };
            println!(
                "{:<4} {:<28} {:>8.3} {:>9.3} {:>+8.3}  {front}",
                rank + 1,
                result.id.name(),
                result.cpi,
                result.component,
                result.delta.overall.total(),
            );
        }
        // The delta stacks name the mechanism, not just the magnitude:
        // print where the best variant's cycles went relative to stock.
        if let Some(best) = summary.ranked().first() {
            if best.id != summary.base {
                println!(
                    "best variant {} vs {}:",
                    best.id.name(),
                    summary.base.name()
                );
                println!("  {}", best.delta);
            }
        }
        println!();
    }

    service.shutdown();
    Ok(())
}
