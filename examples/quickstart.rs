//! Quickstart: measure a workload suite on a simulated machine, infer the
//! gray-box model, and print CPI stacks — the paper's end-to-end flow
//! (Fig. 1) in one page.
//!
//! Run with `cargo run --release --example quickstart`.

use cpistack::model::{FitOptions, InferredModel, MicroarchParams};
use cpistack::sim::machine::MachineConfig;
use cpistack::sim::run::run_suite;

fn main() {
    // 1. Pick the machine: one of the paper's three Intel generations.
    let machine = MachineConfig::core2();
    println!("machine: {}\n", machine.name);

    // 2. Run the benchmark suite and collect hardware performance counters
    //    (the expensive measurement campaign; scaled down here).
    let suite = cpistack::workloads::suites::cpu2000();
    let records = run_suite(&machine, &suite, 200_000, 42);

    // 3. Infer the model: microarchitecture constants from the spec sheet,
    //    the ten b-parameters by nonlinear regression on the counters.
    let arch = MicroarchParams::from_machine(&machine);
    let model = InferredModel::fit(&arch, &records, &FitOptions::default())
        .expect("training set is large enough");
    println!("fitted model: {model}\n");

    // 4. CPI stacks for every benchmark, with prediction quality.
    println!(
        "{:<24} {:>9} {:>9}  stack",
        "benchmark", "measured", "predicted"
    );
    for record in records.iter().take(12) {
        let stack = model.cpi_stack(record);
        println!(
            "{:<24} {:>9.3} {:>9.3}  {}",
            record.benchmark(),
            record.cpi(),
            stack.total(),
            stack
        );
    }
    println!("(first 12 of {} benchmarks shown)", records.len());
}
