//! Quickstart: measure a workload suite on a simulated machine, infer the
//! gray-box model, and print CPI stacks — the paper's end-to-end flow
//! (Fig. 1) as one `Workbench` pipeline.
//!
//! Run with `cargo run --release --example quickstart`.

use cpistack::model::FitOptions;
use cpistack::sim::machine::MachineConfig;
use cpistack::{SimSource, Workbench};
use pmu::{MachineId, Suite};

fn main() -> Result<(), cpistack::PipelineError> {
    // 1. Pick the machine: one of the paper's three Intel generations.
    let machine = MachineConfig::core2();
    println!("machine: {}\n", machine.name);

    // 2.+3. Collect the benchmark suite's performance counters (the
    //    expensive measurement campaign; scaled down here) and infer the
    //    model: microarchitecture constants from the spec sheet, the ten
    //    b-parameters by nonlinear regression on the counters.
    let fitted = Workbench::new()
        .machine(machine)
        .source(
            SimSource::new()
                .suite(cpistack::workloads::suites::cpu2000())
                .uops(200_000)
                .seed(42),
        )
        .fit_options(FitOptions::default())
        .collect()?
        .fit()?;
    let group = fitted
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("the collected machine and suite");
    println!("fitted model: {}\n", group.model);

    // 4. CPI stacks for every benchmark, with prediction quality.
    println!(
        "{:<24} {:>9} {:>9}  stack",
        "benchmark", "measured", "predicted"
    );
    for record in group.records.iter().take(12) {
        let stack = group.model.cpi_stack(record);
        println!(
            "{:<24} {:>9.3} {:>9.3}  {}",
            record.benchmark(),
            record.cpi(),
            stack.total(),
            stack
        );
    }
    println!("(first 12 of {} benchmarks shown)", group.records.len());
    Ok(())
}
