//! Quickstart: measure a workload suite on a simulated machine, then serve
//! the paper's end-to-end flow (Fig. 1) from a long-lived [`CpiService`]:
//! ingest the counter batch once, fit on first demand, and let every later
//! client — here, a second handle issuing a repeat request — hit the warm
//! model cache instead of re-running the regression. The final step adds a
//! state dir, restarts the service, and shows the fit surviving the
//! restart (zero regressions on the second lifetime).
//!
//! Run with `cargo run --release --example quickstart`.

use cpistack::model::FitOptions;
use cpistack::service::{CpiService, ModelKey, ServiceConfig};
use cpistack::sim::machine::MachineConfig;
use cpistack::workbench::MachineSpec;
use cpistack::{ServiceError, SimSource};
use pmu::{MachineId, Suite};

fn main() -> Result<(), ServiceError> {
    // 1. Pick the machine and run the measurement campaign (the expensive
    //    part; scaled down here). On real hardware this is a perf-tool CSV
    //    instead — `client.ingest_csv` accepts it directly.
    let machine = MachineConfig::core2();
    println!("machine: {}\n", machine.name);
    let records = SimSource::new()
        .suite(cpistack::workloads::suites::cpu2000())
        .uops(200_000)
        .seed(42)
        .collect_config(&machine);

    // 2. Start the serving session and hand it the campaign: constants
    //    from the spec sheet, counters from the measurement.
    let service = CpiService::start(ServiceConfig::new());
    let client = service.client();
    client.register(MachineSpec::from(&machine))?;
    println!("ingested {} benchmark runs\n", client.ingest(records)?);

    // 3. The first request for this (machine, suite, options) key infers
    //    the ten b-parameters by nonlinear regression …
    let key = ModelKey::new(
        MachineId::Core2,
        Some(Suite::Cpu2000),
        FitOptions::default(),
    );
    let (report, stacks) = client.stacks(key.clone())?;
    println!(
        "fitted model ({}): {}\n",
        if report.cached {
            "cache hit"
        } else {
            "fresh fit"
        },
        report.model
    );

    // 4. … and streams a CPI stack for every benchmark.
    println!("{:<24} {:>9}  stack", "benchmark", "predicted");
    for (benchmark, stack) in stacks.iter().take(12) {
        println!("{benchmark:<24} {:>9.3}  {stack}", stack.total());
    }
    println!("(first 12 of {} benchmarks shown)\n", stacks.len());

    // 5. Any further client shares the warm campaign: the same key is a
    //    cache hit, never a second regression.
    let other_client = service.client();
    let (repeat, _) = other_client.stacks(key.clone())?;
    assert!(repeat.cached, "repeat requests are served from the cache");
    let stats = service.shutdown();
    println!(
        "service stats: {} fit(s), {} cache hit(s), {} miss(es)",
        stats.fits, stats.cache.hits, stats.cache.misses
    );

    // 6. Warm restarts: with a state dir, the fit above would have been
    //    snapshot to disk, and a brand-new service — tomorrow's process,
    //    after a deploy — serves the same key from the store without
    //    re-running the regression. (`cpistack serve --state-dir` is the
    //    CLI spelling; `--listen` serves the same session over TCP.)
    let state_dir = std::env::temp_dir().join(format!("cpistack_qs_{}", std::process::id()));
    for lifetime in ["cold start", "warm restart"] {
        let service = CpiService::start(ServiceConfig::new().with_state_dir(&state_dir));
        let client = service.client();
        client.register(MachineSpec::from(&machine))?;
        client.ingest(
            SimSource::new()
                .suite(cpistack::workloads::suites::cpu2000())
                .uops(200_000)
                .seed(42)
                .collect_config(&machine),
        )?;
        let report = client.fit(key.clone())?;
        let stats = service.shutdown();
        println!(
            "{lifetime}: cached {} — {} regression(s) ran",
            report.cached, stats.fits
        );
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    Ok(())
}
